"""The parallel batch executor: N fingerprints from one preparation.

Per-copy work (split, encrypt, insert, verify, self-check) is pure
CPU with no shared mutable state, so it fans out over a
``ProcessPoolExecutor``. The :class:`~.prepare.PreparedProgram` ships
to each worker exactly once (via the pool initializer), not per task;
tasks themselves are tiny :class:`CopySpec` values and travel in
chunks to keep queue traffic off the critical path.

Determinism: each copy embeds with RNG streams salted by its
``(watermark, seed)`` alone — nothing about scheduling, worker count
or completion order feeds the embedding, so a batch is bit-for-bit
reproducible at any ``workers`` setting. Failures are isolated: a
copy that raises comes back as a failed :class:`.metrics.CopyResult`
(one-line ``error`` plus the full formatted ``traceback``) and the
rest of the batch proceeds.

Every worker re-runs its emitted copy on the key input and recognizes
the mark from that same cached trace (one execution serves both the
semantic check and the recognition self-check).

Observability: when the parent has tracing enabled, the batch span's
:class:`~repro.obs.spans.SpanContext` rides the pool initializer into
each worker; workers record their per-copy spans locally, return them
on the :class:`~.metrics.CopyResult`, and the parent grafts them back
(:meth:`~repro.obs.spans.Tracer.adopt`) — one coherent tree at any
``workers`` setting. With ``profile=True`` each self-check run counts
VM dispatches and the batch folds every copy's counts (plus the
prepared trace's, if it was profiled) into one
:class:`~repro.obs.vmprofile.DispatchProfile` on the report.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..bytecode_wm.embedder import embed
from ..bytecode_wm.recognizer import recognize, recognize_with_report
from ..obs.spans import SpanContext, attach
from ..obs.vmprofile import DispatchProfile
from ..vm.assembler import assemble
from ..vm.disassembler import disassemble
from ..vm.interpreter import run_module
from .metrics import BatchReport, CopyResult, StageTimings, Stopwatch
from .prepare import PreparedProgram

#: Copy ids become output file names; keep them shell- and fs-safe.
_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


@dataclass(frozen=True)
class CopySpec:
    """One requested fingerprinted copy.

    ``seed`` salts the embedder's RNG streams so two copies carrying
    the same watermark still diversify their placements; identical
    (watermark, seed) pairs produce byte-identical modules.
    """

    copy_id: str
    watermark: int
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.copy_id or not set(self.copy_id) <= _ID_SAFE:
            raise ValueError(
                f"copy id {self.copy_id!r} must be non-empty and use only "
                f"letters, digits, '.', '_', '-'"
            )
        if self.watermark < 0:
            raise ValueError(f"{self.copy_id}: watermark must be non-negative")


def embed_copy(
    prepared: PreparedProgram,
    spec: CopySpec,
    self_check: bool = True,
    profile: bool = False,
) -> CopyResult:
    """Embed, emit and (by default) self-check one copy. Never raises.

    The embed reuses the prepared trace and site table (no re-trace);
    the self-check runs the marked copy once in branch mode and feeds
    that single trace to both the output comparison and the
    recognizer. ``self_check=False`` skips that run — a throughput
    knob for deployments that verify by sampling instead.
    ``profile=True`` counts VM dispatches during the self-check run
    and attaches the raw per-opcode array to the result.
    """
    start = time.perf_counter()
    try:
        with obs.span("copy", copy_id=spec.copy_id,
                      watermark=spec.watermark):
            with obs.span("copy.embed"):
                result = embed(
                    prepared.module,
                    spec.watermark,
                    prepared.key,
                    pieces=prepared.pieces,
                    watermark_bits=prepared.watermark_bits,
                    trace=prepared.trace,
                    sites=prepared.sites,
                    rng_salt=f"{spec.watermark}/{spec.seed}",
                )
            recognized = None
            check_ok = output_ok = False
            dispatch_counts = None
            if self_check:
                with obs.span("copy.self_check") as sp:
                    check_run = run_module(
                        result.module,
                        prepared.key.inputs,
                        trace_mode="branch",
                        profile=profile,
                    )
                    dispatch_counts = check_run.dispatch_counts
                    found = recognize(
                        result.module,
                        prepared.key,
                        watermark_bits=prepared.watermark_bits,
                        trace=check_run.trace,
                    )
                    recognized = found.value
                    check_ok = (
                        found.complete and found.value == spec.watermark
                    )
                    output_ok = (
                        list(check_run.output)
                        == list(prepared.baseline_output)
                    )
                    sp.set(steps=check_run.steps, recognized=check_ok,
                           output_ok=output_ok)
            text = disassemble(result.module)
        return CopyResult(
            copy_id=spec.copy_id,
            watermark=spec.watermark,
            seed=spec.seed,
            ok=True,
            checked=self_check,
            self_check=check_ok,
            output_ok=output_ok,
            recognized=recognized,
            piece_count=result.piece_count,
            bytes_emitted=len(text.encode()),
            byte_size_increase=result.byte_size_increase,
            wall_seconds=time.perf_counter() - start,
            text=text,
            dispatch_counts=dispatch_counts,
        )
    except Exception as exc:  # per-copy isolation: report, don't propagate
        return CopyResult(
            copy_id=spec.copy_id,
            watermark=spec.watermark,
            seed=spec.seed,
            ok=False,
            wall_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
        )


# -- process-pool plumbing --------------------------------------------------

_WORKER_PREPARED: Optional[PreparedProgram] = None
_WORKER_SELF_CHECK: bool = True
_WORKER_PROFILE: bool = False
_WORKER_PARENT: Optional[SpanContext] = None


def _init_worker(
    prepared: PreparedProgram,
    self_check: bool,
    profile: bool = False,
    parent: Optional[SpanContext] = None,
) -> None:
    global _WORKER_PREPARED, _WORKER_SELF_CHECK
    global _WORKER_PROFILE, _WORKER_PARENT
    _WORKER_PREPARED = prepared
    _WORKER_SELF_CHECK = self_check
    _WORKER_PROFILE = profile
    _WORKER_PARENT = parent
    if parent is not None:
        # The parent batch span's context travels in; record worker
        # spans locally and hand them back on each CopyResult.
        obs.enable_tracing()


def _embed_in_worker(spec: CopySpec) -> CopyResult:
    assert _WORKER_PREPARED is not None, "worker initializer did not run"
    if _WORKER_PARENT is None:
        return embed_copy(
            _WORKER_PREPARED, spec, _WORKER_SELF_CHECK, _WORKER_PROFILE
        )
    tracer = obs.get_tracer()
    with attach(_WORKER_PARENT):
        result = embed_copy(
            _WORKER_PREPARED, spec, _WORKER_SELF_CHECK, _WORKER_PROFILE
        )
    result.spans = tracer.drain()
    return result


# -- service workers: artifacts load from the store, by digest --------------
#
# The serving daemon (repro.serve.daemon) dispatches one job per HTTP
# request instead of one batch per pool, so the PreparedProgram cannot
# ride the pool initializer: requests for different releases share the
# same workers. Workers instead load artifacts from the persistent
# store lazily, keyed by content digest, through a small per-process
# cache — each worker pays the unpickle once per release it serves.

#: Per-process artifact cache: releases a worker has already loaded.
#: Small and FIFO like PrepareCache: a worker serves few releases.
_ARTIFACT_CACHE: "OrderedDict[Tuple[str, str], PreparedProgram]" = OrderedDict()
_ARTIFACT_CACHE_MAX = 4


def load_prepared_artifact(store_root: str, digest: str) -> PreparedProgram:
    """Load an artifact from the store, memoized per process.

    The cache key includes the store root so one process can serve
    multiple stores (tests do; a daemon normally will not).
    """
    key = (store_root, digest)
    cached = _ARTIFACT_CACHE.get(key)
    if cached is not None:
        _ARTIFACT_CACHE.move_to_end(key)
        return cached
    from ..serve.store import ArtifactStore  # deferred: serve imports us

    prepared = ArtifactStore(store_root, create=False).load(digest)
    while len(_ARTIFACT_CACHE) >= _ARTIFACT_CACHE_MAX:
        _ARTIFACT_CACHE.popitem(last=False)
    _ARTIFACT_CACHE[key] = prepared
    return prepared


def service_embed_copy(
    store_root: str,
    digest: str,
    spec: CopySpec,
    self_check: bool = True,
    parent: Optional[SpanContext] = None,
    drain_spans: bool = False,
) -> CopyResult:
    """One serving-daemon embed job: artifact by digest, copy by spec.

    ``parent`` grafts the job's spans under the request span.
    ``drain_spans=True`` is the process-pool mode: the job records
    spans on a worker-local tracer and hands them back on the result
    for the parent to adopt. Thread-pool mode records straight into
    the server's own tracer and leaves ``result.spans`` empty.
    """
    prepared = load_prepared_artifact(store_root, digest)
    if parent is None:
        return embed_copy(prepared, spec, self_check)
    if drain_spans:
        tracer = obs.get_tracer()
        if not tracer.enabled:
            tracer = obs.enable_tracing()
        tracer.drain()  # a prior job's leavings must not leak in
        with attach(parent):
            result = embed_copy(prepared, spec, self_check)
        result.spans = tracer.drain()
        return result
    with attach(parent):
        return embed_copy(prepared, spec, self_check)


def service_recognize(
    store_root: str,
    digest: str,
    module_text: str,
    parent: Optional[SpanContext] = None,
    drain_spans: bool = False,
) -> Dict[str, Any]:
    """One serving-daemon recognize job, against an artifact's key.

    The artifact supplies the key and fingerprint width — a recognize
    request names a release and ships only the (possibly attacked)
    module text. Returns plain data so it travels home from a process
    pool: the recovered value, the diagnostic funnel, and (in
    process-pool mode) the job's spans as dicts.
    """

    def run() -> Dict[str, Any]:
        prepared = load_prepared_artifact(store_root, digest)
        module = assemble(module_text)
        found, report = recognize_with_report(
            module, prepared.key, watermark_bits=prepared.watermark_bits
        )
        value = found.value if found.complete else None
        return {
            "complete": found.complete,
            "value": value,
            "report": report.to_dict(),
            "spans": [],
        }

    if parent is None:
        return run()
    if drain_spans:
        tracer = obs.get_tracer()
        if not tracer.enabled:
            tracer = obs.enable_tracing()
        tracer.drain()
        with attach(parent):
            doc = run()
        doc["spans"] = [sp.to_dict() for sp in tracer.drain()]
        return doc
    with attach(parent):
        return run()


def default_chunksize(copy_count: int, workers: int) -> int:
    """Chunk the work queue: ~4 chunks per worker balances queue
    overhead against load-balancing granularity."""
    return max(1, copy_count // max(1, workers * 4))


def run_batch(
    prepared: PreparedProgram,
    copies: Iterable[CopySpec],
    workers: int = 1,
    outdir: Optional[str] = None,
    chunksize: Optional[int] = None,
    cache_hits: int = 0,
    cache_misses: int = 1,
    self_check: bool = True,
    profile: bool = False,
) -> BatchReport:
    """Embed every requested copy, in parallel when ``workers > 1``.

    ``workers == 1`` runs in-process (no pool, no pickling) — the
    output is identical either way. When ``outdir`` is given each
    successful copy is written to ``<outdir>/<copy_id>.wasm``.
    Results keep the order of ``copies`` regardless of scheduling.
    ``self_check=False`` skips the per-copy re-run + recognition.
    ``profile=True`` aggregates per-opcode VM dispatch counts from
    every self-check run (and the prepared trace, when it was
    profiled) into ``report.dispatch_profile``.
    """
    specs = list(copies)
    if workers < 1:
        raise ValueError("workers must be positive")
    seen = set()
    for spec in specs:
        if spec.copy_id in seen:
            raise ValueError(f"duplicate copy id {spec.copy_id!r}")
        seen.add(spec.copy_id)

    tracer = obs.get_tracer()
    timings = StageTimings()
    watch = Stopwatch()
    with watch, obs.span("batch", copies=len(specs), workers=workers):
        with timings.measure("embed"):
            if workers == 1 or len(specs) <= 1:
                results = [embed_copy(prepared, s, self_check, profile)
                           for s in specs]
            else:
                chunk = chunksize or default_chunksize(len(specs), workers)
                parent = obs.current_context() if tracer.enabled else None
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(prepared, self_check, profile, parent),
                ) as pool:
                    results = list(
                        pool.map(_embed_in_worker, specs, chunksize=chunk)
                    )
        if outdir is not None:
            with timings.measure("write"):
                os.makedirs(outdir, exist_ok=True)
                for copy in results:
                    if copy.text is None:
                        continue
                    path = os.path.join(outdir, f"{copy.copy_id}.wasm")
                    with open(path, "w") as fp:
                        fp.write(copy.text)

    if tracer.enabled:
        for copy in results:
            if copy.spans:
                tracer.adopt(copy.spans)
                copy.spans = []

    dispatch_profile = None
    if profile:
        dispatch_profile = DispatchProfile()
        if prepared.dispatch_counts is not None:
            dispatch_profile.merge(DispatchProfile.from_counts(
                prepared.dispatch_counts,
                wall_seconds=prepared.timings.stages.get("trace", 0.0),
            ))
        for copy in results:
            if copy.dispatch_counts is not None:
                dispatch_profile.merge(
                    DispatchProfile.from_counts(copy.dispatch_counts)
                )

    return BatchReport(
        workers=workers,
        copies=results,
        prepare_timings=prepared.timings,
        batch_timings=timings,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        wall_seconds=watch.seconds,
        dispatch_profile=dispatch_profile,
    )


def sequential_specs(
    count: int,
    start_watermark: int = 1,
    id_prefix: str = "copy",
    seed: int = 0,
) -> List[CopySpec]:
    """``count`` specs with consecutive watermarks — the common
    "customer 1..N" fingerprinting shape, used by manifests and tests."""
    if count < 1:
        raise ValueError("count must be positive")
    width = max(4, len(str(start_watermark + count - 1)))
    return [
        CopySpec(
            copy_id=f"{id_prefix}-{start_watermark + i:0{width}d}",
            watermark=start_watermark + i,
            seed=seed + i,
        )
        for i in range(count)
    ]
