"""Statistical-attack analysis (paper Section 2, fourth property).

    "Fourth, branches are ubiquitous in real programs, hopefully
    making path-based marks invulnerable to statistical attacks."

A statistical attacker compares a suspect binary's instruction
statistics against a population of unmarked programs and flags
anomalies. This module provides the attacker's toolkit — opcode
histograms, branch density, and a total-variation distance between
programs — so the stealth claim can be *measured* instead of hoped
for (see ``benchmarks/test_tab_stealth.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from .vm.program import Module


@dataclass
class CodeStatistics:
    """Instruction-level statistics of one WVM module."""

    opcode_counts: Counter
    total_instructions: int
    conditional_branches: int
    functions: int

    @property
    def branch_density(self) -> float:
        """Conditional branches per instruction."""
        if self.total_instructions == 0:
            return 0.0
        return self.conditional_branches / self.total_instructions

    def opcode_distribution(self) -> Dict[str, float]:
        if self.total_instructions == 0:
            return {}
        return {
            op: count / self.total_instructions
            for op, count in self.opcode_counts.items()
        }


def collect_statistics(module: Module) -> CodeStatistics:
    """Static statistics over every real instruction of the module."""
    counts: Counter = Counter()
    branches = 0
    total = 0
    for fn in module.functions.values():
        for instr in fn.real_instructions():
            counts[instr.op] += 1
            total += 1
            if instr.is_conditional:
                branches += 1
    return CodeStatistics(counts, total, branches, len(module.functions))


def distribution_distance(a: CodeStatistics, b: CodeStatistics) -> float:
    """Total-variation distance between two opcode distributions.

    0.0 = identical opcode mix; 1.0 = disjoint. This is the natural
    metric for an attacker fingerprinting "unusual" binaries: a
    watermark scheme is statistically stealthy when marked programs
    stay within the distance spread of ordinary program-to-program
    variation.
    """
    da = a.opcode_distribution()
    db = b.opcode_distribution()
    # Sorted so the float summation order is fixed: set iteration is
    # hash-seed dependent, and an order-dependent sum breaks exact
    # symmetry (d(a,b) != d(b,a) in the last ulp) on some seeds.
    keys = sorted(set(da) | set(db))
    return 0.5 * sum(abs(da.get(k, 0.0) - db.get(k, 0.0)) for k in keys)


def population_spread(modules: List[Module]) -> float:
    """Largest pairwise distance within an unmarked population.

    The attacker's decision threshold: anything within this spread is
    indistinguishable from natural variation.
    """
    stats = [collect_statistics(m) for m in modules]
    worst = 0.0
    for i, a in enumerate(stats):
        for b in stats[i + 1:]:
            worst = max(worst, distribution_distance(a, b))
    return worst
