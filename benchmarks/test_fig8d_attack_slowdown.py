"""Figure 8(d): the branch-insertion attack's own runtime cost.

Paper: "an adversary can destroy a 512-bit watermark by increasing
the number of branches in a program by 150 percent, but this attack
comes at a cost of slowing down the program by 50 percent" — the
attack's payload (``if (x*(x-1)%2 != 0) x++;``) executes wherever it
lands, so the attacked program pays for every dynamically-reached
insertion.

We sweep the branch-increase fraction on the hot workload and report
the induced slowdown; shape: roughly linear growth.
"""

import random

from benchmarks._util import monotone_nondecreasing, print_table, run_once
from repro.attacks.bytecode import branch_increase_fraction, insert_branches
from repro.vm import count_conditional_branches, run_module
from repro.workloads import caffeinemark_module

FRACTIONS = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0]
INPUTS = [10]


def test_fig8d_attack_slowdown(benchmark):
    def experiment():
        module = caffeinemark_module()
        base_branches = count_conditional_branches(module)
        base_steps = run_module(module, INPUTS).steps
        rows = []
        for frac in FRACTIONS:
            inserted = int(round(base_branches * frac))
            attacked = insert_branches(module, inserted, random.Random(42))
            actual = branch_increase_fraction(module, attacked)
            steps = run_module(attacked, INPUTS).steps
            rows.append((actual, steps / base_steps - 1.0))
        return base_steps, rows

    base_steps, rows = run_once(benchmark, experiment)

    print_table(
        f"Figure 8(d) - attack slowdown vs branch increase "
        f"(base {base_steps:,} steps)",
        ("branch increase", "slowdown"),
        [(f"{f:.0%}", f"{s:+.1%}") for f, s in rows],
    )

    slowdowns = [s for _f, s in rows]
    assert slowdowns[0] == 0.0
    assert monotone_nondecreasing(slowdowns, slack=0.05)
    # A ~150% branch increase costs real time (paper: ~50%); we only
    # pin the order of magnitude: between 5% and 500%.
    idx_150 = min(range(len(FRACTIONS)),
                  key=lambda i: abs(FRACTIONS[i] - 1.5))
    assert 0.05 < slowdowns[idx_150] < 5.0
