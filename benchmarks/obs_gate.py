"""CI observability gate: boot the daemon, drive load, judge the SLOs.

One self-contained proof that the telemetry hub works end to end:

1. prepare a pinned-seed artifact into a fresh store;
2. boot a real `ServerThread` with a journal directory;
3. drive embed/recognize load through `ServiceClient`;
4. drive a second burst through a one-worker `FleetDispatcher`
   pointed at the same daemon, so the `fleet-dispatch-p95` and
   `fleet-error-rate` objectives are judged over real sends rather
   than vacuously met on zero samples;
5. scrape `/metrics` and fail on any exposition-conformance problem;
6. read `/v1/obs/events` and `/v1/obs/spans` and fail if the journal
   or the trace trees are empty;
7. exit with the SLO verdict from `/v1/obs/slo` — 0 when every
   objective is met, 1 on any breach.

`--inject-faults` arms a fault plan that makes embeds fail, which must
flip the exit code to 1 — CI runs the script both ways to prove the
gate actually gates.

Usage::

    PYTHONPATH=src python benchmarks/obs_gate.py [--inject-faults]
"""

import argparse
import shutil
import sys
import tempfile

from repro import faults, obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.faults import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.obs.journal import read_events, read_spans
from repro.obs.promcheck import check_exposition
from repro.pipeline import prepare
from repro.serve import ArtifactStore, ServerConfig, ServerThread
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.dispatch import FleetDispatcher, Job, WorkerSpec
from repro.workloads import gcd_module

SEED = 2004
COPIES = 4
KEY = WatermarkKey(secret=b"obs-gate", inputs=[25, 10])


def drive_load(client, digest):
    """Pinned-seed embed + recognize traffic; failures are expected
    under an armed fault plan and must not abort the gate."""
    failures = 0
    for index in range(COPIES):
        try:
            out = client.embed(
                digest, f"copy-{index:04d}", SEED + index, seed=index
            )
            client.recognize(digest, out["module"])
        except ServiceError as exc:
            failures += 1
            print(f"  embed copy-{index:04d}: HTTP {exc.status}")
    return failures


def drive_fleet(port, digest):
    """Push embeds through a one-worker fleet aimed back at the booted
    daemon, so ``fleet.dispatch`` telemetry lands in the same hub and
    the fleet SLOs are evaluated over real samples.  Terminal failures
    are expected under an armed fault plan and must not abort the gate.
    """
    dispatcher = FleetDispatcher(
        [WorkerSpec(name="self", url=f"http://127.0.0.1:{port}")],
        retry=RetryPolicy(max_attempts=2, base_delay=0.05, seed=SEED),
        poll_interval=0.02,
        probe_interval=0.25,
    )
    futures = []
    try:
        for index in range(COPIES):
            futures.append(dispatcher.submit(Job(
                route="/v1/embed",
                payload={
                    "artifact": digest,
                    "copy_id": f"fleet-{index:04d}",
                    "watermark": SEED + 100 + index,
                    "seed": index,
                },
                job_id=f"fleet-{index:04d}",
            )))
        dispatcher.drain(timeout=60.0)
    finally:
        dispatcher.close()
    failures = sum(1 for f in futures if f.exception() is not None)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--inject-faults", action="store_true",
        help="arm a daemon.job fault plan; the gate must then FAIL",
    )
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="obs-gate-")
    problems = []
    try:
        store_root = f"{workdir}/store"
        journal_dir = f"{workdir}/journal"
        store = ArtifactStore(store_root)
        store.put(prepare(gcd_module(), KEY, 16, 8), label="obs-gate")
        digest = store.records()[0].digest

        if args.inject_faults:
            faults.install(FaultPlan([
                FaultRule(site="daemon.job", action="raise", times=None),
            ], seed=SEED))

        obs.enable_tracing()
        config = ServerConfig(
            store_root=store_root, port=0, executor="thread",
            workers=2, journal_dir=journal_dir,
        )
        with ServerThread(config) as server:
            client = ServiceClient(
                f"http://127.0.0.1:{server.service.port}",
                retry=RetryPolicy(max_attempts=1),
            )
            failures = drive_load(client, digest)
            print(f"load driven: {COPIES} embeds, {failures} failed")

            fleet_failures = drive_fleet(server.service.port, digest)
            print(f"fleet driven: {COPIES} embeds, "
                  f"{fleet_failures} failed")

            exposition = client.metrics()
            for problem in check_exposition(exposition):
                problems.append(f"/metrics: {problem}")

            events = client.obs_events(limit=500)
            print(f"events in ring: {events['count']} "
                  f"(emitted {events['emitted_total']})")
            if events["count"] == 0:
                problems.append("/v1/obs/events returned no events")

            traces = client.obs_spans()["traces"]
            print(f"trace trees: {len(traces)}")
            if not args.inject_faults and not traces:
                problems.append("/v1/obs/spans returned no traces")

            slo = client.obs_slo()
            health = client.healthz()
    finally:
        faults.clear()
        obs.disable_tracing()
        obs.set_hub(None)

    journaled = read_events(journal_dir)
    spans = read_spans(journal_dir)
    print(f"journal: {len(journaled)} event(s), {len(spans)} span(s)")
    if not journaled:
        problems.append("journal file holds no events")
    if health["slo"]["met"] != slo["met"]:
        problems.append("/healthz and /v1/obs/slo disagree on the verdict")

    by_name = {s["objective"]["name"]: s for s in slo["objectives"]}
    for name in ("fleet-dispatch-p95", "fleet-error-rate"):
        status = by_name.get(name)
        if status is None:
            problems.append(f"SLO spec is missing the {name} objective")
        elif not args.inject_faults and status["samples"] == 0:
            problems.append(
                f"{name} judged zero samples despite fleet load"
            )

    print()
    for status in slo["objectives"]:
        flag = "ok " if status["met"] else "FAIL"
        print(f"{flag} {status['objective']['name']}: {status['detail']}")
    for problem in problems:
        print(f"PROBLEM: {problem}")

    shutil.rmtree(workdir, ignore_errors=True)

    if problems:
        return 1
    if not slo["met"]:
        print(f"\nSLO gate: BREACHED {slo['breached']} "
              f"(max burn {slo['max_burn_rate']:.2f})")
        return 1
    print("\nSLO gate: all objectives met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
