"""Ablation: the per-modulus voting prefilter in recovery.

Paper (Section 3.3): the vote "has been empirically observed to
greatly improve the average-case running time of the algorithm, while
having a negligible effect on the probability of success."

The filter's job is shedding the *random* statements that corrupted or
coincidental windows decode to ("there will be a very large number of
blocks that have nothing to do with the watermark") before the
quadratic consistency-graph phase runs. We pollute a trace with
hundreds of random in-range statements and measure recovery time and
success with the vote on and off.

(A flood of statements consistently forged from one wrong watermark
can legitimately outvote the genuine pieces — majority forgery beats
any majority decoder — so that is *not* the scenario the filter is
evaluated on.)
"""

import random
import time

from benchmarks._util import print_table, run_once
from repro.bytecode_wm import WatermarkKey
from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.enumeration import StatementEnumeration
from repro.core.primes import choose_moduli
from repro.core.recovery import recover
from repro.core.splitting import split

WATERMARK_BITS = 128
WATERMARK = (1 << 127) // 7
TRIALS = 3
JUNK_PER_TRIAL = 500


def _polluted_bits(moduli, enum, cipher, rng):
    """Genuine pieces plus a flood of random in-range statements."""
    bits = [rng.randint(0, 1) for _ in range(64)]
    pieces = split(WATERMARK, moduli, 2 * len(moduli), rng)
    codes = [enum.encode(stmt) for stmt in pieces]
    codes += [rng.randrange(enum.space_size) for _ in range(JUNK_PER_TRIAL)]
    rng.shuffle(codes)
    for code in codes:
        bits.extend(int_to_bits_lsb_first(cipher.encrypt_block(code), 64))
        bits.extend(rng.randint(0, 1) for _ in range(8))
    return bits


def test_ablation_voting(benchmark):
    def experiment():
        moduli = choose_moduli(WATERMARK_BITS)
        enum = StatementEnumeration(moduli)
        key = WatermarkKey(secret=b"ablation-voting", inputs=[])
        cipher = key.cipher()
        stats = {True: [0.0, 0, 0], False: [0.0, 0, 0]}
        for trial in range(TRIALS):
            bits = _polluted_bits(moduli, enum, cipher,
                                  random.Random(trial))
            for use_voting in (True, False):
                start = time.perf_counter()
                result = recover(bits, cipher, enum, use_voting=use_voting)
                stats[use_voting][0] += time.perf_counter() - start
                stats[use_voting][1] += int(
                    result.complete and result.value == WATERMARK
                )
                stats[use_voting][2] += result.candidates_after_voting
        return stats

    stats = run_once(benchmark, experiment)

    print_table(
        f"Ablation - voting prefilter ({TRIALS} trials, "
        f"{JUNK_PER_TRIAL} random junk statements each)",
        ("voting", "total recovery time", "successes",
         "candidates after filter"),
        [
            ("on", f"{stats[True][0]:.3f}s", f"{stats[True][1]}/{TRIALS}",
             stats[True][2]),
            ("off", f"{stats[False][0]:.3f}s", f"{stats[False][1]}/{TRIALS}",
             stats[False][2]),
        ],
    )

    # Negligible effect on success: the vote never loses a recovery
    # the unfiltered algorithm would have made.
    assert stats[True][1] == TRIALS
    assert stats[True][1] >= stats[False][1]
    # The filter sheds most of the junk before the graph phase...
    assert stats[True][2] < stats[False][2] / 2
    # ...which is where the running-time win comes from.
    assert stats[True][0] < stats[False][0]
