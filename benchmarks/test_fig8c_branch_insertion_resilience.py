"""Figure 8(c): survivable branch insertion vs. number of pieces.

Paper: "our implementation can withstand a level of random branch
insertion that varies with the number of watermark pieces embedded in
the program and with the size of the watermark" — more redundancy
buys more resilience; a 512-bit watermark dies sooner than a 128-bit
one at the same piece count (bigger marks need more surviving
coverage).

For each piece count we scan increasing branch-insertion levels
(expressed, as in the figure, as the *fractional increase in the
program's branch count*) and report the largest level at which
recognition still succeeds in a majority of trials.

:func:`test_fig8c_codec_resilience` repeats the sweep along the codec
axis at a fixed (bits, pieces) point: the same marked workload, the
same attack schedule, once per registered codec.
"""

import random
import zlib

from benchmarks._util import print_table, run_once
from repro.attacks.bytecode import branch_increase_fraction, insert_branches
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.vm import VMError
from repro.workloads import jess_module

PIECE_COUNTS = [10, 20, 40]
LEVELS = [2, 5, 10, 20, 40, 80, 160, 320]   # inserted branch counts
TRIALS = 3
INPUTS = [7, 13]


def _case_seed(bits, pieces, inserted, trial):
    """Attack RNG seed from the full case coordinates.

    Every (bits, pieces) case gets its own attack streams — nothing is
    shared across parametrized cases, so the sweep's outcome cannot
    depend on case order.
    """
    return zlib.crc32(f"fig8c/{bits}/{pieces}/{inserted}/{trial}".encode())


def _attacked(marked, bits, pieces, inserted, trial):
    return insert_branches(
        marked.module, inserted,
        random.Random(_case_seed(bits, pieces, inserted, trial)),
    )


def _survives(marked, key, bits, pieces, inserted, trial, codec=None):
    attacked = _attacked(marked, bits, pieces, inserted, trial)
    try:
        found = recognize(attacked, key, watermark_bits=bits, codec=codec)
    except VMError:
        return False
    return found.complete and found.value == marked.watermark


def _max_survivable(marked, key, bits, pieces, base_module, codec=None):
    """Largest insertion level with majority survival, as a fraction."""
    best = 0.0
    for inserted in LEVELS:
        wins = sum(
            _survives(marked, key, bits, pieces, inserted, t, codec)
            for t in range(TRIALS)
        )
        if wins * 2 > TRIALS:
            # Report the branch growth of the attacks actually judged
            # (mean over trials), not some unrelated reference attack.
            best = sum(
                branch_increase_fraction(
                    base_module,
                    _attacked(marked, bits, pieces, inserted, t),
                )
                for t in range(TRIALS)
            ) / TRIALS
        else:
            break
    return best


def test_fig8c_branch_insertion_resilience(benchmark):
    def experiment():
        base_module = jess_module(rule_count=36, burn=4000)
        key = WatermarkKey(secret=b"fig8c", inputs=INPUTS)
        results = {}
        for bits in (64, 128):
            per_pieces = []
            for pieces in PIECE_COUNTS:
                marked = embed(base_module, (1 << (bits - 1)) // 3, key,
                               pieces=pieces, watermark_bits=bits)
                per_pieces.append(
                    _max_survivable(marked, key, bits, pieces, base_module)
                )
            results[bits] = per_pieces
        return results

    results = run_once(benchmark, experiment)

    print_table(
        "Figure 8(c) - survivable branch insertion (fraction of "
        "original branches) vs pieces",
        ("pieces", "64-bit watermark", "128-bit watermark"),
        [
            (p, f"{results[64][i]:.1%}", f"{results[128][i]:.1%}")
            for i, p in enumerate(PIECE_COUNTS)
        ],
    )

    # Shape: resilience grows with the piece count...
    assert results[64][-1] >= results[64][0]
    assert results[128][-1] >= results[128][0]
    # ...the most redundant setting survives a nontrivial attack...
    assert results[64][-1] > 0.0
    # ...and the smaller watermark is at least as resilient as the
    # larger one at equal redundancy (it needs less surviving coverage).
    assert results[64][-1] >= results[128][-1]


CODECS = ["gcrt", "rs-8", "hybrid-4"]
CODEC_BITS = 64
CODEC_PIECES = 24


def test_fig8c_codec_resilience(benchmark):
    def experiment():
        base_module = jess_module(rule_count=36, burn=4000)
        key = WatermarkKey(secret=b"fig8c-codec", inputs=INPUTS)
        survivable = {}
        for spec in CODECS:
            marked = embed(
                base_module, (1 << (CODEC_BITS - 1)) // 3, key,
                pieces=CODEC_PIECES, watermark_bits=CODEC_BITS, codec=spec,
            )
            survivable[spec] = _max_survivable(
                marked, key, CODEC_BITS, CODEC_PIECES, base_module, spec
            )
        return survivable

    survivable = run_once(benchmark, experiment)

    print_table(
        "Figure 8(c) (codec axis) - survivable branch insertion, "
        f"{CODEC_BITS}-bit watermark, {CODEC_PIECES} pieces",
        ("codec", "max survivable insertion"),
        [(spec, f"{survivable[spec]:.1%}") for spec in CODECS],
    )

    # Every codec survives a nontrivial level of branch insertion at
    # this budget; the hybrid's parity rescue keeps it at least as
    # durable as the pure-GCRT channel it extends.
    for spec in CODECS:
        assert survivable[spec] > 0.0
    assert survivable["hybrid-4"] >= survivable["gcrt"]
