"""CI fleet gate: prove two workers beat one by a real margin.

The scale-out claim behind ``repro serve --fleet`` is that embed
throughput grows near-linearly with worker daemons. This gate proves
it with wall clocks, not prose:

1. prepare a pinned-seed artifact into a fresh **2-shard fabric**
   store (the scale-out layout from ``docs/scaling.md``);
2. boot two real worker daemons as **separate processes** (``python
   -m repro serve``) — separate interpreters, like a real fleet, so
   neither the GIL nor the gate's own bookkeeping caps the scaling;
3. **calibrate** the box: run the same embed job on a bare
   ``ProcessPoolExecutor`` with 1 then 2 processes — the measured
   ratio is the hardware's own ceiling, with zero fleet machinery;
4. time ``COPIES`` embeds through a :class:`FleetDispatcher` pointed
   at **one** worker, then again pointed at **both**;
5. write the measurements to a ``fleet-scaling.json`` report (CI
   uploads it as an artifact);
6. exit 0 only if every job completed cleanly and the 2-worker run
   is at least ``MIN_SPEEDUP`` times faster — or, on hardware whose
   calibrated ceiling is itself below that floor (oversubscribed VMs:
   two saturated cores can run >40% slower per job than one), only
   if the fleet still delivers ``MIN_EFFICIENCY`` of whatever the
   hardware can do. The dispatcher can't beat physics; it must not
   *waste* it either.

``--inject-faults`` arms a plan that kills every ``fleet.send``, which
must flip the exit code to 1 — CI runs the script both ways to prove
the gate actually gates.

Usage::

    PYTHONPATH=src python benchmarks/fleet_gate.py [--inject-faults]
        [--report FILE] [--copies N]
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time

from repro import faults, obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.faults import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.pipeline import prepare
from repro.serve import (
    FleetDispatcher,
    Job,
    ServiceClient,
    WorkerSpec,
    open_store,
)
from repro.workloads import CAFFEINEMARK_INPUT, caffeinemark_module

SEED = 2004
# CaffeineMark, not gcd: each embed + self-check must cost real CPU,
# or per-job HTTP/dispatch overhead drowns the scaling signal.
KEY = WatermarkKey(secret=b"fleet-gate", inputs=list(CAFFEINEMARK_INPUT))
MIN_SPEEDUP = 1.6
#: When the calibrated hardware ceiling is below MIN_SPEEDUP, the
#: fleet must still capture this fraction of it.
MIN_EFFICIENCY = 0.85
SHARDS = 2
BOOT_TIMEOUT = 30.0

_CALIBRATION = {"root": "", "digest": ""}


def _calibration_job(index):
    """One embed + self-check, exactly what a fleet worker runs."""
    from repro.pipeline.batch import CopySpec, service_embed_copy

    return service_embed_copy(
        _CALIBRATION["root"], _CALIBRATION["digest"],
        CopySpec(f"cal-{index}", 7000 + index, index), self_check=True,
    ).ok


def calibrate(store_root, digest, copies):
    """The box's own 1-vs-2-process ratio for this exact job.

    Forked workers inherit ``_CALIBRATION`` (Linux CI and dev boxes),
    so the pool needs no store re-plumbing.
    """
    from concurrent.futures import ProcessPoolExecutor

    _CALIBRATION.update(root=store_root, digest=digest)
    walls = {}
    for nproc in (1, 2):
        with ProcessPoolExecutor(max_workers=nproc) as pool:
            list(pool.map(_calibration_job, range(50, 50 + nproc)))  # warm
            start = time.perf_counter()
            list(pool.map(_calibration_job, range(100, 100 + copies)))
            walls[nproc] = time.perf_counter() - start
    return walls[1], walls[2]


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_worker(store_root, port):
    """One worker daemon in its own interpreter — like a real fleet.

    Thread executor with one worker: embeds run on the daemon's own
    core and nothing is pickled across a process pool, so per-job cost
    is almost pure watermarking CPU.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store_root,
         "--port", str(port), "--workers", "1", "--executor", "thread"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_healthy(url, deadline):
    client = ServiceClient(url, retry=RetryPolicy(max_attempts=1))
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("status") == "ok":
                return True
        except Exception:
            pass
        time.sleep(0.2)
    return False


def run_fleet(specs, digest, copies, label):
    """Time ``copies`` embeds through a fleet of ``specs`` workers.

    One warmup embed per worker runs untimed first, so cold caches
    (the worker loads the artifact on first touch) don't pollute the
    measurement.
    """
    dispatcher = FleetDispatcher(
        specs, retry=RetryPolicy(max_attempts=2, base_delay=0.05, seed=SEED)
    )
    try:
        warmups = len(specs)
        for index in range(warmups):
            job = Job(route="/v1/embed", payload={
                "artifact": digest, "copy_id": f"warm-{label}-{index}",
                "watermark": 9000 + index, "seed": index,
            })
            dispatcher.submit(job).result(timeout=120)

        failures = []

        def on_error(job, exc):
            failures.append(f"{job.job_id}: {exc}")

        start = time.perf_counter()
        futures = []
        for index in range(copies):
            job = Job(
                route="/v1/embed",
                payload={
                    "artifact": digest,
                    "copy_id": f"{label}-copy-{index:04d}",
                    "watermark": SEED + index,
                    "seed": index,
                },
                on_error=on_error,
            )
            futures.append(dispatcher.submit(job))
        for future in futures:
            try:
                future.result(timeout=300)
            except Exception:
                pass  # recorded via on_error
        wall = time.perf_counter() - start
        stats = dispatcher.stats()
        stats["completed"] -= warmups  # timed jobs only
    finally:
        dispatcher.close()
    return wall, stats, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--inject-faults", action="store_true",
        help="arm a fleet.send fault plan; the gate must then FAIL",
    )
    parser.add_argument(
        "--report", default="fleet-scaling.json",
        help="where to write the scaling report (default %(default)s)",
    )
    parser.add_argument(
        "--copies", type=int, default=10,
        help="embeds per timed run (default %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per configuration, best-of (default "
             "%(default)s); interleaved so host-load drift hits both "
             "configurations alike",
    )
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="fleet-gate-")
    problems = []
    report = {
        "copies": args.copies,
        "shards": SHARDS,
        "min_speedup": MIN_SPEEDUP,
        "faults_injected": args.inject_faults,
    }
    procs = []
    solo_wall = duo_wall = 0.0
    solo_stats = duo_stats = {}
    solo_failures = duo_failures = []
    try:
        store_root = f"{workdir}/store"
        store = open_store(store_root, create=True, shards=SHARDS)
        store.put(prepare(caffeinemark_module(), KEY, 16, 8),
                  label="fleet-gate")
        digest = store.records()[0].digest
        report["artifact"] = digest

        if args.inject_faults:
            faults.install(FaultPlan([
                FaultRule(site="fleet.send", action="raise", times=None),
            ], seed=SEED))
            raw_speedup = None  # the run dies at warmup; don't calibrate
        else:
            cal_solo, cal_duo = calibrate(store_root, digest, args.copies)
            raw_speedup = cal_solo / cal_duo if cal_duo > 0 else 0.0
            report["calibration"] = {
                "solo_wall_seconds": cal_solo,
                "duo_wall_seconds": cal_duo,
                "raw_speedup": raw_speedup,
            }
            print(f"calibration: bare 2-process ceiling "
                  f"{raw_speedup:.2f}x ({cal_solo:.2f}s -> {cal_duo:.2f}s)")

        specs = []
        deadline = time.monotonic() + BOOT_TIMEOUT
        for name in ("alpha", "beta"):
            port = free_port()
            procs.append(spawn_worker(store_root, port))
            # capacity == the worker's --workers count (1), per the
            # WorkerSpec contract: over-queueing a saturated worker
            # just hides jobs where the dispatcher can't re-plan them.
            specs.append(WorkerSpec(
                name, f"http://127.0.0.1:{port}", capacity=1
            ))
        for spec in specs:
            if not wait_healthy(spec.url, deadline):
                raise RuntimeError(f"worker {spec.name} never became "
                                   f"healthy at {spec.url}")

        solo_walls, duo_walls = [], []
        for round_index in range(max(1, args.repeats)):
            wall, solo_stats, solo_failures = run_fleet(
                specs[:1], digest, args.copies, f"solo{round_index}"
            )
            solo_walls.append(wall)
            print(f"1 worker : {args.copies} embeds in {wall:.2f}s "
                  f"({solo_stats['completed']} ok, "
                  f"{solo_stats['errors']} errors)")
            wall, duo_stats, duo_failures = run_fleet(
                specs, digest, args.copies, f"duo{round_index}"
            )
            duo_walls.append(wall)
            print(f"2 workers: {args.copies} embeds in {wall:.2f}s "
                  f"({duo_stats['completed']} ok, "
                  f"{duo_stats['errors']} errors)")
        solo_wall = min(solo_walls)
        duo_wall = min(duo_walls)
        report["solo_walls"] = solo_walls
        report["duo_walls"] = duo_walls
    except Exception as exc:
        # Under an armed fault plan the warmup embed itself dies; that
        # is the gate working, not the harness crashing.
        problems.append(f"run aborted: {exc}")
    finally:
        faults.clear()
        obs.set_hub(None)
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    speedup = solo_wall / duo_wall if duo_wall > 0 else 0.0
    report.update({
        "solo_wall_seconds": solo_wall,
        "duo_wall_seconds": duo_wall,
        "speedup": speedup,
        "solo_stats": solo_stats,
        "duo_stats": duo_stats,
    })

    for name, stats, failures in (("solo", solo_stats, solo_failures),
                                  ("duo", duo_stats, duo_failures)):
        if stats.get("completed") != args.copies:
            problems.append(
                f"{name}: {stats.get('completed', 0)}/{args.copies} "
                f"embeds completed"
            )
        for failure in failures[:4]:
            problems.append(f"{name}: {failure}")
    raw = report.get("calibration", {}).get("raw_speedup", 0.0)
    if speedup >= MIN_SPEEDUP:
        pass  # the headline claim holds outright
    elif raw and raw < MIN_SPEEDUP:
        # The hardware itself can't reach the floor; hold the fleet
        # to MIN_EFFICIENCY of the calibrated ceiling instead.
        efficiency = speedup / raw
        report["efficiency"] = efficiency
        print(f"NOTE: hardware ceiling {raw:.2f}x is below the "
              f"{MIN_SPEEDUP}x floor; gating on dispatch efficiency "
              f"({efficiency:.0%} of ceiling, need {MIN_EFFICIENCY:.0%})")
        if efficiency < MIN_EFFICIENCY:
            problems.append(
                f"fleet captured only {efficiency:.0%} of the "
                f"{raw:.2f}x hardware ceiling "
                f"(need {MIN_EFFICIENCY:.0%})"
            )
    else:
        problems.append(
            f"2-worker speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x floor (hardware ceiling "
            f"{raw:.2f}x)" if raw else
            f"2-worker speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x floor"
        )

    report["problems"] = problems
    with open(args.report, "w") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"report: {args.report}")
    shutil.rmtree(workdir, ignore_errors=True)

    print()
    for problem in problems:
        print(f"PROBLEM: {problem}")
    if problems:
        print("\nfleet gate: FAILED")
        return 1
    print(f"\nfleet gate: {speedup:.2f}x with 2 workers "
          f"(floor {MIN_SPEEDUP}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
