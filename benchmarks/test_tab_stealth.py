"""Stealth against statistical attacks (paper Section 2, property 4).

    "branches are ubiquitous in real programs, hopefully making
    path-based marks invulnerable to statistical attacks."

The attacker's best cheap test is comparing a suspect program's
opcode mix and branch density against the natural spread of unmarked
programs. We measure: (a) the natural program-to-program spread
across the workload population, and (b) how far watermarked variants
drift from their own original, as a function of the piece count. The
claim holds where (b) stays inside (a).
"""

from benchmarks._util import print_table, run_once
from repro.analysis import (
    collect_statistics,
    distribution_distance,
    population_spread,
)
from repro.bytecode_wm import WatermarkKey, embed
from repro.workloads import (
    caffeinemark_module,
    collatz_module,
    gcd_module,
    jess_module,
)
from repro.workloads.spec import spec_vm

PIECES = [4, 8, 16, 32, 64]


def test_tab_stealth(benchmark):
    def experiment():
        population = [
            gcd_module(), collatz_module(), caffeinemark_module(),
            jess_module(rule_count=36, burn=100),
            spec_vm("mcf"), spec_vm("gzip"),
        ]
        spread = population_spread(population)

        host = jess_module(rule_count=36, burn=100)
        base_stats = collect_statistics(host)
        key = WatermarkKey(secret=b"stealth", inputs=[7, 13])
        rows = []
        for pieces in PIECES:
            marked = embed(host, 0xAAAA, key, pieces=pieces,
                           watermark_bits=16)
            stats = collect_statistics(marked.module)
            rows.append((
                pieces,
                distribution_distance(base_stats, stats),
                stats.branch_density,
            ))
        return spread, base_stats.branch_density, rows

    spread, base_density, rows = run_once(benchmark, experiment)

    print_table(
        f"Stealth - opcode-distribution drift vs pieces "
        f"(natural population spread = {spread:.3f}, "
        f"host branch density = {base_density:.3f})",
        ("pieces", "TV distance from original", "branch density"),
        [(p, f"{d:.3f}", f"{bd:.3f}") for p, d, bd in rows],
    )

    # Drift grows with the piece count...
    distances = [d for _p, d, _bd in rows]
    assert distances[-1] >= distances[0]
    # ...but small embeddings hide inside natural variation.
    assert distances[0] < spread, (distances[0], spread)
    assert distances[1] < spread
    # Branch density stays in a plausible band (unmarked programs in
    # the population run roughly 0.1-0.2 branches/instruction).
    for _p, _d, bd in rows:
        assert 0.05 < bd < 0.45
