"""CI chaos gate: soak a self-healing fleet and prove it heals.

The self-healing claim behind :class:`repro.serve.dispatch.
HealthMonitor` is that a fleet survives real worker failure without
losing, duplicating, or meaningfully delaying jobs. This soak proves
it the same way ``fleet_gate.py`` proves scaling — with processes and
wall clocks, not prose:

1. prepare a pinned-seed artifact into a fresh **2-shard fabric**;
2. boot **three real worker daemons** as separate processes;
3. run a closed-loop embed/recognize load for ``--duration`` seconds
   while chaos runs on a deterministic relative schedule:

   * one worker is **SIGTERMed** mid-soak (graceful drain: real 503 +
     Retry-After responses) and later restarted;
   * another is **SIGKILLed** (connection refused, no goodbye) and
     later restarted;
   * a pinned-seed probability :class:`~repro.faults.FaultPlan` keeps
     injecting ``fleet.send`` failures and delays, plus ``fleet.probe``
     delays, throughout;

4. assert **zero lost jobs** (every submission resolved), **zero
   duplicated callbacks** (exactly-once resolution under
   eject-requeues), at least one **ejection** and one **readmission**,
   every worker **healthy again** at the end, and a passing
   ``dispatch_p95`` + ``fleet_error_rate`` SLO verdict over the
   journal;
5. write a ``chaos-soak.json`` report (CI uploads it).

``--no-eject`` runs the identical soak with the health monitor
disabled — dead workers keep receiving jobs until each job's retry
budget dies on them — and must exit 1. CI runs both directions to
prove the gate actually gates.

Usage::

    PYTHONPATH=src python benchmarks/chaos_soak.py [--no-eject]
        [--duration SECONDS] [--report FILE] [--seed N]
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro import faults, obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.faults import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.obs.journal import HubConfig, TelemetryHub, read_events
from repro.obs.slo import Objective, SLOEngine
from repro.pipeline import prepare
from repro.serve import (
    DispatchOverload,
    FleetDispatcher,
    Job,
    ServiceClient,
    WorkerSpec,
    open_store,
)
from repro.workloads import gcd_module

SEED = 2004
KEY = WatermarkKey(secret=b"chaos-soak", inputs=[25, 10])
SHARDS = 2
WORKERS = ("alpha", "beta", "gamma")
BOOT_TIMEOUT = 30.0
#: Closed-loop concurrency: enough to keep 3 one-slot workers busy,
#: small enough that accounting stays legible in the report.
MAX_OUTSTANDING = 8
#: SLO verdict targets: the p95 of a single send (gcd embeds are tens
#: of ms; the allowance absorbs injected 150 ms stalls), and the
#: terminal failure budget the healed fleet must stay under.
DISPATCH_P95_TARGET = 5.0
ERROR_RATE_TARGET = 0.02


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_worker(store_root, port):
    """One worker daemon in its own interpreter, quick to drain."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store_root,
         "--port", str(port), "--workers", "1", "--executor", "thread",
         "--drain-timeout", "1.0"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_healthy(url, deadline):
    client = ServiceClient(url, retry=RetryPolicy(max_attempts=1))
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("status") == "ok":
                return True
        except Exception:
            pass
        time.sleep(0.2)
    return False


class Accounting:
    """Exactly-once ledger: every submitted job must resolve once."""

    def __init__(self):
        self.lock = threading.Lock()
        self.resolutions = {}   # job_id -> callback count
        self.ok = 0
        self.failed = 0
        self.rejected = 0       # shed / brownout / closed
        self.failures = []      # sample of terminal errors

    def on_success(self, job, doc):
        with self.lock:
            self.resolutions[job.job_id] = (
                self.resolutions.get(job.job_id, 0) + 1
            )
            self.ok += 1

    def on_error(self, job, exc):
        with self.lock:
            self.resolutions[job.job_id] = (
                self.resolutions.get(job.job_id, 0) + 1
            )
            if isinstance(exc, DispatchOverload):
                self.rejected += 1
            else:
                self.failed += 1
                if len(self.failures) < 8:
                    self.failures.append(f"{job.job_id}: {exc}")


class Chaos(threading.Thread):
    """Kill and resurrect workers on a relative schedule.

    Times are fractions of the soak duration, so a quick local run and
    a longer CI run exercise the same story: SIGTERM ``beta`` early
    (graceful drain — the fleet sees honest 503s before the port goes
    dark), SIGKILL ``gamma`` mid-soak (no goodbye at all), restart
    both with time left for readmission.
    """

    SCHEDULE = (
        ("beta", "sigterm", 0.20),
        ("gamma", "sigkill", 0.45),
        ("beta", "restart", 0.50),
        ("gamma", "restart", 0.70),
    )

    def __init__(self, procs, ports, store_root, start, duration):
        super().__init__(name="chaos", daemon=True)
        self.procs = procs          # name -> Popen, mutated on restart
        self.ports = ports
        self.store_root = store_root
        self.start_time = start
        self.duration = duration
        self.log = []

    def run(self):
        for name, action, when in self.SCHEDULE:
            delay = self.start_time + when * self.duration - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            proc = self.procs[name]
            if action == "sigterm":
                proc.terminate()
                proc.wait(timeout=30)
            elif action == "sigkill":
                proc.kill()
                proc.wait(timeout=30)
            else:
                self.procs[name] = spawn_worker(
                    self.store_root, self.ports[name]
                )
            self.log.append({
                "worker": name, "action": action,
                "at_seconds": round(time.monotonic() - self.start_time, 2),
            })
            print(f"chaos: {action} {name} "
                  f"at t+{self.log[-1]['at_seconds']:.1f}s")


def drive_load(dispatcher, digest, module_text, ledger, duration, seed):
    """Closed-loop load: embeds and recognitions, bounded outstanding.

    Returns the list of submitted job ids. Submission is paced by
    completion (at most ``MAX_OUTSTANDING`` in the air), so a stalled
    fleet slows the loop instead of ballooning the queue — the same
    back-pressure a well-behaved client applies.
    """
    submitted = []
    outstanding = []
    deadline = time.monotonic() + duration
    index = 0
    while time.monotonic() < deadline:
        outstanding = [f for f in outstanding if not f.done()]
        if len(outstanding) >= MAX_OUTSTANDING:
            time.sleep(0.005)
            continue
        job_id = f"soak-{index:05d}"
        if index % 3 == 2:
            job = Job(
                route="/v1/recognize",
                payload={"artifact": digest, "module": module_text},
                job_id=job_id,
                on_success=ledger.on_success, on_error=ledger.on_error,
            )
        else:
            job = Job(
                route="/v1/embed",
                payload={
                    "artifact": digest,
                    "copy_id": job_id,
                    "watermark": (seed + index) % (1 << 16),
                    "seed": index,
                },
                job_id=job_id,
                on_success=ledger.on_success, on_error=ledger.on_error,
            )
        try:
            outstanding.append(dispatcher.submit(job))
        except RuntimeError:
            break  # closed under our feet; the harness is tearing down
        submitted.append(job_id)
        index += 1
    for future in outstanding:
        try:
            future.result(timeout=60)
        except Exception:
            pass  # recorded via on_error
    return submitted


def wait_all_healthy(monitor, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = monitor.states()
        if all(state == "healthy" for state in states.values()):
            return states
        time.sleep(0.2)
    return monitor.states()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-eject", action="store_true",
        help="disable the health monitor; the soak must then FAIL",
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="seconds of sustained load (default %(default)s)",
    )
    parser.add_argument(
        "--report", default="chaos-soak.json",
        help="where to write the soak report (default %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=SEED,
        help="fault-plan / retry / probe seed (default %(default)s)",
    )
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="chaos-soak-")
    journal_path = os.path.join(workdir, "journal.jsonl")
    obs.set_hub(TelemetryHub(HubConfig(journal_path=journal_path)))
    problems = []
    report = {
        "seed": args.seed,
        "duration_seconds": args.duration,
        "eject": not args.no_eject,
        "workers": list(WORKERS),
        "shards": SHARDS,
    }
    procs = {}
    ledger = Accounting()
    submitted = []
    dispatcher = None
    chaos = None
    try:
        store_root = f"{workdir}/store"
        store = open_store(store_root, create=True, shards=SHARDS)
        store.put(prepare(gcd_module(), KEY, 16, 8), label="chaos-soak")
        digest = store.records()[0].digest
        report["artifact"] = digest

        ports = {name: free_port() for name in WORKERS}
        specs = []
        deadline = time.monotonic() + BOOT_TIMEOUT
        for name in WORKERS:
            procs[name] = spawn_worker(store_root, ports[name])
            specs.append(WorkerSpec(
                name, f"http://127.0.0.1:{ports[name]}", capacity=1
            ))
        for spec in specs:
            if not wait_healthy(spec.url, deadline):
                raise RuntimeError(
                    f"worker {spec.name} never became healthy at {spec.url}"
                )

        # One clean embed up front: its module text feeds the
        # recognition third of the load.
        seed_client = ServiceClient(specs[0].url)
        status, doc, _ = seed_client.request_ex("POST", "/v1/embed", {
            "artifact": digest, "copy_id": "soak-seed",
            "watermark": 0x5EED, "seed": 0,
        })
        if status != 200:
            raise RuntimeError(f"seed embed failed ({status}): {doc}")
        module_text = doc["module"]

        # Probability chaos rides the whole soak: flaky sends, slow
        # sends, slow probes — all off one pinned seed.
        faults.install(FaultPlan([
            FaultRule(site="fleet.send", action="raise", times=None,
                      probability=0.04),
            FaultRule(site="fleet.send", action="delay", times=None,
                      probability=0.05, delay_seconds=0.15),
            FaultRule(site="fleet.probe", action="delay", times=None,
                      probability=0.05, delay_seconds=0.05),
        ], seed=args.seed))

        dispatcher = FleetDispatcher(
            specs,
            retry=RetryPolicy(max_attempts=4, base_delay=0.05,
                              max_delay=0.5, seed=args.seed),
            poll_interval=0.02,
            eject=not args.no_eject,
            probe_interval=0.25,
            probe_timeout=1.0,
            # 3 consecutive failures: a dead worker's refusals trip it
            # in milliseconds, while the 4%-probability injected send
            # faults almost never line up three in a row on one worker
            # — chaos should eject the dead, not the unlucky.
            eject_threshold=3,
            readmit_after=1.0,
            health_seed=args.seed,
        )

        start = time.monotonic()
        chaos = Chaos(procs, ports, store_root, start, args.duration)
        chaos.start()
        submitted = drive_load(
            dispatcher, digest, module_text, ledger, args.duration,
            args.seed,
        )
        chaos.join(timeout=60)
        report["chaos_timeline"] = chaos.log

        # Stop injecting before the recovery grace: readmission should
        # be judged on a quiet network, like a real incident ending.
        faults.clear()
        if dispatcher.monitor is not None:
            final_states = wait_all_healthy(dispatcher.monitor, timeout=15.0)
            report["final_worker_states"] = final_states
            report["ejections"] = dispatcher.monitor.ejections
            report["readmissions"] = dispatcher.monitor.readmissions
            if dispatcher.monitor.ejections < 1:
                problems.append(
                    "no worker was ever ejected — the chaos never bit, "
                    "the soak proved nothing"
                )
            if dispatcher.monitor.readmissions < 1:
                problems.append("no ejected worker was ever readmitted")
            for name, state in final_states.items():
                if state != "healthy":
                    problems.append(
                        f"worker {name} is {state!r} after recovery grace"
                    )
        report["dispatcher_stats"] = dispatcher.stats()
    except Exception as exc:
        problems.append(f"soak aborted: {exc}")
    finally:
        faults.clear()
        if dispatcher is not None:
            dispatcher.close()
        hub = obs.get_hub()
        if hub is not None:
            hub.close()
        obs.set_hub(None)
        for proc in procs.values():
            proc.terminate()
        for proc in procs.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    # -- verdicts ----------------------------------------------------------

    with ledger.lock:
        resolved = dict(ledger.resolutions)
        totals = {
            "submitted": len(submitted),
            "ok": ledger.ok,
            "failed": ledger.failed,
            "rejected": ledger.rejected,
        }
        failures = list(ledger.failures)
    report["totals"] = totals
    print(f"soak: {totals['submitted']} jobs submitted, "
          f"{totals['ok']} ok, {totals['failed']} failed, "
          f"{totals['rejected']} rejected")

    if totals["submitted"] == 0:
        problems.append("no jobs were submitted; the soak never ran")
    lost = [job_id for job_id in submitted if job_id not in resolved]
    if lost:
        problems.append(
            f"{len(lost)} job(s) lost (submitted, never resolved): "
            f"{lost[:5]}"
        )
    duplicated = {j: n for j, n in resolved.items() if n > 1}
    if duplicated:
        problems.append(
            f"{len(duplicated)} job(s) resolved more than once: "
            f"{dict(list(duplicated.items())[:5])}"
        )
    if totals["submitted"]:
        error_rate = ledger.failed / totals["submitted"]
        report["error_rate"] = error_rate
        if error_rate > ERROR_RATE_TARGET:
            problems.append(
                f"{ledger.failed}/{totals['submitted']} jobs failed "
                f"terminally ({error_rate:.1%} > "
                f"{ERROR_RATE_TARGET:.0%} budget)"
            )
        for failure in failures[:4]:
            problems.append(f"sample failure: {failure}")
    if ledger.rejected:
        # A brownout with only one worker dead at a time means the
        # monitor over-ejected; surface it.
        problems.append(
            f"{ledger.rejected} submission(s) rejected "
            f"(shed/brownout) during a survivable failure"
        )

    events = read_events(journal_path) if os.path.exists(journal_path) else []
    slo = SLOEngine([
        Objective(
            name="chaos-dispatch-p95", kind="dispatch_p95",
            target=DISPATCH_P95_TARGET,
            description="one fleet send stays fast even mid-chaos",
        ),
        Objective(
            name="chaos-fleet-error-rate", kind="fleet_error_rate",
            target=ERROR_RATE_TARGET,
            description="terminal dispatch failures stay inside budget",
        ),
    ]).report(events)
    report["slo"] = slo
    for status in slo["objectives"]:
        name = status["objective"]["name"]
        print(f"slo: {name}: "
              f"{'met' if status['met'] else 'BREACHED'} — "
              f"{status['detail']}")
        if not status["met"]:
            problems.append(f"SLO {name} breached: {status['detail']}")
    if not any(
        s["samples"] for s in slo["objectives"]
        if s["objective"]["name"] == "chaos-dispatch-p95"
    ):
        problems.append("no fleet.dispatch samples reached the journal")

    report["problems"] = problems
    with open(args.report, "w") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"report: {args.report}")
    shutil.rmtree(workdir, ignore_errors=True)

    print()
    for problem in problems:
        print(f"PROBLEM: {problem}")
    if problems:
        print("\nchaos soak: FAILED")
        return 1
    print(f"\nchaos soak: survived {report.get('ejections', 0)} ejection(s) "
          f"with zero lost/duplicated jobs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
