#!/usr/bin/env python
"""CI-gated benchmark regression harness for the WVM engine.

Runs the interpreter micro-benchmarks (fast engine vs the seed
reference engine, interleaved in the same process) plus, with
``--figures``, the ``benchmarks/test_*`` figure reproductions under
pytest-benchmark, and writes a schema-versioned ``BENCH_<date>.json``
report with per-benchmark median, IQR and steps/sec.

Gating philosophy
-----------------

Absolute wall-clock numbers swing by ±20% or more between runner
machines (and between runs on the *same* machine), so comparing a
fresh timing against a committed absolute number would flake
constantly. Every gated metric is therefore a **ratio measured inside
one process with the two sides interleaved** — fast-engine throughput
over reference-engine throughput, binary trace size over JSON trace
size — which cancels the machine out. Raw seconds and steps/sec are
still recorded (they are what humans read) but never gated.

Usage::

    PYTHONPATH=src python benchmarks/regression.py              # run + gate
    PYTHONPATH=src python benchmarks/regression.py --figures    # + figures
    PYTHONPATH=src python benchmarks/regression.py --rebaseline # refresh
    PYTHONPATH=src python benchmarks/regression.py --no-check   # report only

Exit status is non-zero when any gated metric regresses more than
``--tolerance`` (default 0.20) below/above its committed baseline in
``benchmarks/baseline.json``, or when the fast engine's trace is not
byte-identical to the reference engine's.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import io
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(REPO, "src"))

from repro import faults  # noqa: E402
from repro.obs.vmprofile import profile_run  # noqa: E402
from repro.vm._reference import run_module_reference  # noqa: E402
from repro.vm.interpreter import run_module  # noqa: E402
from repro.vm.trace_io import dump_trace, dump_trace_binary  # noqa: E402
from repro.workloads.caffeinemark import (  # noqa: E402
    DEFAULT_INPUT as CAFFEINE_INPUT,
    caffeinemark_module,
)
from repro.workloads.jesslike import (  # noqa: E402
    DEFAULT_INPUT as JESS_INPUT,
    jess_module,
)

SCHEMA = "wvm-bench/1"
DEFAULT_BASELINE = os.path.join(HERE, "baseline.json")
DEFAULT_TOLERANCE = 0.20


# -- measurement -------------------------------------------------------------


def _median_iqr(values: List[float]) -> Tuple[float, float]:
    med = statistics.median(values)
    if len(values) < 4:
        return med, max(values) - min(values)
    qs = statistics.quantiles(values, n=4)
    return med, qs[2] - qs[0]


def _time_run(fn: Callable[[], object]) -> Tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _engine_pair(
    name: str,
    module_factory: Callable[[], object],
    inputs: List[int],
    trace_mode: Optional[str],
    repeats: int,
    results: Dict[str, dict],
) -> None:
    """Benchmark fast vs reference on one workload/mode, interleaved.

    Interleaving matters: CPU frequency drifts over seconds, so
    alternating ref/fast runs exposes both engines to the same drift
    and keeps the per-repeat ratio honest.
    """
    module = module_factory()
    ref_times: List[float] = []
    fast_times: List[float] = []
    steps = 0
    for _ in range(repeats):
        t_ref, res_ref = _time_run(
            lambda: run_module_reference(module, inputs, trace_mode=trace_mode)
        )
        t_fast, res_fast = _time_run(
            lambda: run_module(module, inputs, trace_mode=trace_mode)
        )
        assert res_ref.steps == res_fast.steps, "engines disagree on steps"
        assert res_ref.output == res_fast.output, "engines disagree on output"
        steps = res_fast.steps
        ref_times.append(t_ref)
        fast_times.append(t_fast)

    mode = trace_mode or "untraced"
    for engine, times in (("reference", ref_times), ("fast", fast_times)):
        med, iqr = _median_iqr(times)
        results[f"vm.{name}.{mode}.{engine}"] = {
            "unit": "seconds",
            "median": med,
            "iqr": iqr,
            "repeats": repeats,
            "steps": steps,
            "steps_per_sec": steps / med,
            "gate": None,
        }
    ratios = [r / f for r, f in zip(ref_times, fast_times)]
    med, iqr = _median_iqr(ratios)
    results[f"vm.{name}.{mode}.speedup"] = {
        "unit": "ratio",
        "median": med,
        "iqr": iqr,
        "repeats": repeats,
        "gate": "min",
    }


def _trace_identity_check() -> bool:
    """The fast engine must produce byte-identical trace dumps."""
    module = jess_module()
    ok = True
    for mode in ("branch", "full"):
        ref = run_module_reference(module, JESS_INPUT, trace_mode=mode)
        fast = run_module(module, JESS_INPUT, trace_mode=mode)
        ref_buf, fast_buf = io.StringIO(), io.StringIO()
        dump_trace(ref.trace, module, ref_buf)
        dump_trace(fast.trace, module, fast_buf)
        ok = ok and ref_buf.getvalue() == fast_buf.getvalue()
    return ok


def _trace_size_ratio(results: Dict[str, dict]) -> None:
    """Binary-vs-JSON trace size: deterministic, so gated tightly."""
    module = jess_module()
    run = run_module(module, JESS_INPUT, trace_mode="full")
    jbuf = io.StringIO()
    dump_trace(run.trace, module, jbuf)
    bbuf = io.BytesIO()
    dump_trace_binary(run.trace, module, bbuf)
    json_size = len(jbuf.getvalue().encode("utf-8"))
    binary_size = len(bbuf.getvalue())
    results["trace.jess.binary_compression"] = {
        "unit": "ratio",
        "median": json_size / binary_size,
        "iqr": 0.0,
        "repeats": 1,
        "json_bytes": json_size,
        "binary_bytes": binary_size,
        "gate": "min",
    }


def _fault_hook_inertness_check() -> dict:
    """Disarmed fault hooks must be free.

    The injection sites sit on production paths (pipeline workers,
    store writes, daemon jobs), which is only acceptable if a process
    with no plan armed pays nothing for them: ``filter_bytes`` must
    hand back the identical object (no copy), and both hooks must
    amortize to a single ``is None`` test. The nanosecond ceilings are
    ~40x what the test machines measure — they catch someone adding
    real work to the disarmed path, not scheduler noise.
    """
    faults.clear()
    payload = b"x" * 4096
    identity = faults.filter_bytes("bench.site", payload) is payload
    calls = 200_000
    t0 = time.perf_counter()
    for _ in range(calls):
        faults.check("bench.site")
    check_ns = (time.perf_counter() - t0) / calls * 1e9
    t0 = time.perf_counter()
    for _ in range(calls):
        faults.filter_bytes("bench.site", payload)
    filter_ns = (time.perf_counter() - t0) / calls * 1e9
    return {
        "inert": identity and check_ns < 2000.0 and filter_ns < 2000.0,
        "identity_preserved": identity,
        "check_ns_per_call": round(check_ns, 1),
        "filter_ns_per_call": round(filter_ns, 1),
    }


def _dispatch_profiles() -> Dict[str, dict]:
    """Per-opcode dispatch profiles of the gated workloads.

    Separate, *untimed-for-gating* runs on the interpreter's profiled
    loop specializations — the counting twin never touches the timed
    loops above, so profiling here cannot perturb the gated ratios.
    Recorded for trend-watching (superinstruction hit rate, dispatch
    reduction), never gated: the counts are deterministic but the
    throughput context is machine-dependent.
    """
    profiles: Dict[str, dict] = {}
    for name, factory, inputs, mode in (
        ("jess.untraced", jess_module, JESS_INPUT, None),
        ("jess.full", jess_module, JESS_INPUT, "full"),
        ("caffeinemark.untraced", caffeinemark_module, CAFFEINE_INPUT, None),
    ):
        _, profile = profile_run(factory(), inputs, trace_mode=mode)
        profiles[name] = profile.to_dict()
    return profiles


def _figure_benchmarks(results: Dict[str, dict]) -> None:
    """Run the ``benchmarks/test_*`` figure suite under pytest-benchmark.

    Each figure experiment records one honest round; their medians are
    reported for trend-watching but not gated (single rounds on shared
    runners are too noisy for a hard threshold).
    """
    out = os.path.join(HERE, "_figures_bench.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            HERE,
            "-q",
            "--benchmark-only",
            f"--benchmark-json={out}",
        ],
        cwd=REPO,
        env=env,
    )
    if proc.returncode != 0:
        raise SystemExit("figure benchmark suite failed")
    try:
        with open(out) as fp:
            doc = json.load(fp)
    finally:
        if os.path.exists(out):
            os.remove(out)
    for bench in doc.get("benchmarks", []):
        stats = bench["stats"]
        results[f"figures.{bench['name']}"] = {
            "unit": "seconds",
            "median": stats["median"],
            "iqr": stats["iqr"],
            "repeats": stats["rounds"],
            "gate": None,
        }


# -- reporting / gating ------------------------------------------------------


def run_benchmarks(repeats: int, figures: bool) -> dict:
    results: Dict[str, dict] = {}
    print("== interpreter micro-benchmarks ==", flush=True)
    _engine_pair("jess", jess_module, JESS_INPUT, None, repeats, results)
    _engine_pair("jess", jess_module, JESS_INPUT, "branch", repeats, results)
    _engine_pair("jess", jess_module, JESS_INPUT, "full", repeats, results)
    _engine_pair(
        "caffeinemark",
        caffeinemark_module,
        CAFFEINE_INPUT,
        None,
        repeats,
        results,
    )
    _trace_size_ratio(results)
    trace_identical = _trace_identity_check()
    fault_hooks = _fault_hook_inertness_check()
    print("== dispatch profiles ==", flush=True)
    dispatch = _dispatch_profiles()
    if figures:
        print("== figure reproduction benchmarks ==", flush=True)
        _figure_benchmarks(results)
    return {
        "schema": SCHEMA,
        "generated": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": results,
        "dispatch": dispatch,
        "checks": {
            "trace_byte_identical": trace_identical,
            "fault_hooks": fault_hooks,
        },
    }


def print_report(report: dict) -> None:
    rows = sorted(report["benchmarks"].items())
    width = max(len(name) for name, _ in rows)
    print()
    print(f"{'benchmark'.ljust(width)}  {'median':>12}  {'iqr':>10}  gated")
    for name, entry in rows:
        if entry["unit"] == "ratio":
            med = f"{entry['median']:.2f}x"
        else:
            med = f"{entry['median'] * 1000:.1f}ms"
            if "steps_per_sec" in entry:
                med += f" ({entry['steps_per_sec'] / 1e6:.2f}M st/s)"
        gated = entry["gate"] or "-"
        print(
            f"{name.ljust(width)}  {med:>12}  {entry['iqr']:>10.4f}  {gated}"
        )
    print()
    for name, profile in sorted(report.get("dispatch", {}).items()):
        print(
            f"dispatch {name}: {profile['total_dispatches']} dispatches / "
            f"{profile['total_steps']} steps, "
            f"superinstruction hit rate "
            f"{profile['superinstruction_hit_rate']:.1%}, "
            f"dispatch reduction {profile['dispatch_reduction']:.1%}"
        )
    ident = report["checks"]["trace_byte_identical"]
    print(f"trace byte-identical vs reference engine: {ident}")
    hooks = report["checks"].get("fault_hooks")
    if hooks:
        print(
            f"fault hooks inert when disarmed: {hooks['inert']} "
            f"(check {hooks['check_ns_per_call']}ns, "
            f"filter {hooks['filter_ns_per_call']}ns per call)"
        )


def compare_to_baseline(
    report: dict, baseline: dict, tolerance: float
) -> List[str]:
    failures: List[str] = []
    if not report["checks"]["trace_byte_identical"]:
        failures.append(
            "fast engine's trace is not byte-identical to the reference"
        )
    hooks = report["checks"].get("fault_hooks", {})
    if not hooks.get("inert", True):
        failures.append(
            "disarmed fault hooks are no longer free: "
            f"identity={hooks.get('identity_preserved')}, "
            f"check={hooks.get('check_ns_per_call')}ns, "
            f"filter={hooks.get('filter_ns_per_call')}ns per call"
        )
    for name, base in baseline.get("benchmarks", {}).items():
        gate = base.get("gate")
        if not gate:
            continue
        current = report["benchmarks"].get(name)
        if current is None:
            failures.append(f"{name}: benchmark missing from this run")
            continue
        base_med, cur_med = base["median"], current["median"]
        if gate == "min" and cur_med < base_med * (1.0 - tolerance):
            failures.append(
                f"{name}: {cur_med:.3f} regressed more than "
                f"{tolerance:.0%} below baseline {base_med:.3f}"
            )
        elif gate == "max" and cur_med > base_med * (1.0 + tolerance):
            failures.append(
                f"{name}: {cur_med:.3f} regressed more than "
                f"{tolerance:.0%} above baseline {base_med:.3f}"
            )
    return failures


def write_baseline(report: dict, path: str) -> None:
    """Commit only the gated, machine-independent metrics."""
    gated = {
        name: {
            "unit": entry["unit"],
            "median": round(entry["median"], 4),
            "gate": entry["gate"],
        }
        for name, entry in report["benchmarks"].items()
        if entry["gate"]
    }
    doc = {
        "schema": SCHEMA,
        "generated": report["generated"],
        "note": (
            "Gated ratio metrics only; absolute timings are "
            "machine-dependent and deliberately excluded. Refresh with "
            "`python benchmarks/regression.py --rebaseline`."
        ),
        "benchmarks": gated,
    }
    with open(path, "w") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="measurement repeats per engine"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression of gated medians (default 0.20)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, help="committed baseline path"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="report path (default BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--figures",
        action="store_true",
        help="also run the benchmarks/test_* figure suite (slow)",
    )
    parser.add_argument(
        "--dispatch-out",
        default=None,
        metavar="FILE",
        help="also write the dispatch-profile section alone to FILE "
             "(CI uploads it as its own artifact)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="write the report without gating against the baseline",
    )
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="rewrite the committed baseline from this run's medians",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats, args.figures)
    print_report(report)

    out_path = args.output or os.path.join(
        REPO, f"BENCH_{_dt.date.today().isoformat()}.json"
    )
    with open(out_path, "w") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"report written to {out_path}")

    if args.dispatch_out:
        with open(args.dispatch_out, "w") as fp:
            json.dump(
                {
                    "schema": SCHEMA,
                    "generated": report["generated"],
                    "dispatch": report["dispatch"],
                },
                fp,
                indent=2,
                sort_keys=True,
            )
            fp.write("\n")
        print(f"dispatch profiles written to {args.dispatch_out}")

    if args.rebaseline:
        write_baseline(report, args.baseline)
        print(f"baseline rewritten at {args.baseline}")
        return 0
    if args.no_check:
        return 0

    try:
        with open(args.baseline) as fp:
            baseline = json.load(fp)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --rebaseline first")
        return 1
    failures = compare_to_baseline(report, baseline, args.tolerance)
    if failures:
        print("\nREGRESSIONS DETECTED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall gated metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
