"""Shared helpers for the benchmark/figure reproduction harness.

Every ``benchmarks/test_fig*.py`` / ``test_tab*.py`` file regenerates
one table or figure from the paper: it computes the series, prints the
rows (so ``pytest benchmarks/ --benchmark-only -s`` shows the data the
paper plots), asserts the qualitative *shape* the paper reports, and
wraps the heavy computation in ``benchmark.pedantic`` with a single
round so pytest-benchmark records one honest timing per experiment.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]):
    """Render one reproduction table to stdout."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def monotone_nondecreasing(xs: Sequence[float], slack: float = 0.0) -> bool:
    return all(b >= a - slack for a, b in zip(xs, xs[1:]))
