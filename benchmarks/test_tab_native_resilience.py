"""Section 5.2.2 resilience table (the five native attacks).

Paper's reported outcomes:

1. no-op insertion            -> program breaks
2. branch sense inversion     -> program breaks
3. double watermarking        -> program breaks
4. bypassing the branch fn    -> program breaks (tamper-proofing)
5. rerouting bf entries       -> program works; defeats the simple
                                 tracer, not the smart tracer

We regenerate the full table on two SPEC-like kernels and assert every
cell, plus the ablation row: without tamper-proofing, attack 4 yields
a working program with the watermark stripped.
"""

from benchmarks._util import print_table, run_once
from repro.attacks.native import (
    bypass_branch_function,
    run_native_attack_suite,
)
from repro.native import MachineFault, run_image
from repro.native_wm import embed_native, extract_native
from repro.workloads.spec import TRAIN_INPUT, spec_native

PROGRAMS = ("mcf", "vortex")
WATERMARK = 0xFEEDFACE
WIDTH = 32


def test_tab_native_resilience(benchmark):
    def experiment():
        all_rows = {}
        ablation = {}
        for name in PROGRAMS:
            image = spec_native(name)
            emb = embed_native(image, WATERMARK, WIDTH, TRAIN_INPUT)
            assert emb.tamper_jumps, f"{name}: no lockdown cells"
            all_rows[name] = run_native_attack_suite(emb, TRAIN_INPUT)

            # Ablation: same binary without tamper-proofing.
            soft = embed_native(image, WATERMARK, WIDTH, TRAIN_INPUT,
                                tamper_proof=False)
            bypassed = bypass_branch_function(
                soft.image, soft.bf_entry, TRAIN_INPUT
            )
            try:
                ok = run_image(bypassed, TRAIN_INPUT).output == \
                    run_image(soft.image, TRAIN_INPUT).output
            except MachineFault:
                ok = False
            stripped = extract_native(
                bypassed, WIDTH, soft.begin, soft.end, TRAIN_INPUT,
                bf_entry=soft.bf_entry,
            ).watermark != WATERMARK
            ablation[name] = (ok, stripped)
        return all_rows, ablation

    all_rows, ablation = run_once(benchmark, experiment)

    for name in PROGRAMS:
        print_table(
            f"Section 5.2.2 - native attacks on {name}",
            ("attack", "program", "simple tracer", "smart tracer"),
            [
                (o.name,
                 "works" if o.program_ok else "BREAKS",
                 "extracts" if o.extracted_simple else "fails",
                 "extracts" if o.extracted_smart else "fails")
                for o in all_rows[name]
            ],
        )
        outcomes = {o.name: o for o in all_rows[name]}
        for attack in ("1-noop-insertion", "2-branch-sense-inversion",
                       "3-double-watermarking", "4-bypass-branch-function"):
            assert not outcomes[attack].program_ok, (name, attack)
        reroute = outcomes["5-reroute-branch-function"]
        assert reroute.program_ok, name
        assert not reroute.extracted_simple, name
        assert reroute.extracted_smart, name

        works, stripped = ablation[name]
        assert works and stripped, (
            f"{name}: without tamper-proofing, bypass should strip the "
            f"mark from a working program"
        )
    print_table(
        "Ablation - bypass vs. un-tamper-proofed binaries",
        ("program", "program after bypass", "watermark"),
        [(n, "works", "stripped") for n in PROGRAMS],
    )
