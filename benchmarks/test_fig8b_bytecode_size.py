"""Figure 8(b): Java-side size increase vs. number of watermark pieces.

Paper: "embedding carries a fixed cost of approximately 5 percent of
the program size, plus a variable cost of 25 bytes per watermark
piece" and "the space cost [...] is independent of the size of the
application being watermarked".

Our generators emit more bytes per piece than SandMark's (the
contiguous-window loop generator carries 64 explicit branch groups;
see DESIGN.md §6), so the *slope* differs, but the paper's structural
claims are asserted: size grows linearly in the piece count, with a
small fixed component, and the per-piece cost is the same for a small
and a large application.
"""

from benchmarks._util import print_table, run_once
from repro.bytecode_wm import WatermarkKey, embed
from repro.workloads import caffeinemark_module, jess_module

PIECES = [10, 20, 40, 80, 160]
WATERMARK = (1 << 127) // 5


def _size_series(module_factory, inputs, secret):
    key = WatermarkKey(secret=secret, inputs=inputs)
    base_module = module_factory()
    base_size = base_module.byte_size()
    increases = []
    for pieces in PIECES:
        marked = embed(base_module, WATERMARK, key, pieces=pieces,
                       watermark_bits=128)
        increases.append(marked.byte_size_increase)
    return base_size, increases


def test_fig8b_bytecode_size(benchmark):
    def experiment():
        cm = _size_series(caffeinemark_module, [10], b"fig8b-cm")
        jess = _size_series(lambda: jess_module(), [7, 13], b"fig8b-jess")
        return cm, jess

    (cm_base, cm_inc), (jess_base, jess_inc) = run_once(benchmark, experiment)

    def per_piece(increases):
        return (increases[-1] - increases[0]) / (PIECES[-1] - PIECES[0])

    rows = [
        (p, f"{c:,} B", f"{j:,} B")
        for p, c, j in zip(PIECES, cm_inc, jess_inc)
    ]
    rows.append(("bytes/piece", f"{per_piece(cm_inc):,.0f}",
                 f"{per_piece(jess_inc):,.0f}"))
    print_table(
        f"Figure 8(b) - size increase vs pieces "
        f"(CaffeineMark base {cm_base:,} B, Jess base {jess_base:,} B)",
        ("pieces", "caffeinemark", "jess"),
        rows,
    )

    # Linear growth: marginal cost roughly constant across the sweep.
    for inc in (cm_inc, jess_inc):
        early = (inc[1] - inc[0]) / (PIECES[1] - PIECES[0])
        late = (inc[-1] - inc[-2]) / (PIECES[-1] - PIECES[-2])
        assert 0.5 < early / late < 2.0
    # Independence from application size: the per-piece cost on the
    # small (CaffeineMark) and the 10x larger (Jess) app agree.
    ratio = per_piece(cm_inc) / per_piece(jess_inc)
    assert 0.7 < ratio < 1.4, ratio
    # All increases are positive and monotone in the piece count.
    assert all(b > a for a, b in zip(cm_inc, cm_inc[1:]))
    assert all(b > a for a, b in zip(jess_inc, jess_inc[1:]))
