"""Figure 9(a): native-code size increase per SPEC program and
watermark size (128 / 256 / 512 bits).

Paper: "the increases are fairly modest, ranging from about 5% for
crafty to about 16% for mcf. The rate of growth in size is also
fairly small. The mean increase in size ranges from 10.8%, for
128-bit watermarks, to 11.4% for 512-bit watermarks."

Our binaries are ~16x smaller than SPEC builds, so the marginal cost
of the larger watermarks shows more strongly (the 128-bit mean lands
right at the paper's ~11%; 256/512 grow beyond it — see
EXPERIMENTS.md). Asserted shape: every increase is modest (<60%),
grows with watermark size, and the per-program spread is a few
percentage points.
"""

from benchmarks._util import print_table, run_once
from repro.native_wm import embed_native
from repro.workloads.spec import SPEC_PROGRAMS, TRAIN_INPUT, spec_native

WIDTHS = [128, 256, 512]


def test_fig9a_native_size(benchmark):
    def experiment():
        table = {}
        for name in SPEC_PROGRAMS:
            image = spec_native(name)
            base = image.file_size()
            row = []
            for width in WIDTHS:
                emb = embed_native(
                    image, (1 << width) // 3, width, TRAIN_INPUT
                )
                row.append((emb.image.file_size() - base) / base)
            table[name] = row
        return table

    table = run_once(benchmark, experiment)

    rows = [
        (name, *(f"{v:.1%}" for v in table[name]))
        for name in SPEC_PROGRAMS
    ]
    means = [
        sum(table[n][i] for n in SPEC_PROGRAMS) / len(SPEC_PROGRAMS)
        for i in range(len(WIDTHS))
    ]
    rows.append(("MEAN", *(f"{m:.1%}" for m in means)))
    print_table(
        "Figure 9(a) - native size increase (text + initialized data)",
        ("program", "128 bits", "256 bits", "512 bits"),
        rows,
    )

    for name in SPEC_PROGRAMS:
        increases = table[name]
        assert all(0.0 < v < 0.60 for v in increases), (name, increases)
        # Growth with watermark size.
        assert increases[0] <= increases[1] <= increases[2], name
    # The 128-bit mean matches the paper's ~10.8%.
    assert 0.05 < means[0] < 0.20, means
    # Program-to-program spread at a fixed width stays within a few
    # percentage points, as in the figure.
    for i in range(len(WIDTHS)):
        col = [table[n][i] for n in SPEC_PROGRAMS]
        assert max(col) - min(col) < 0.10, (WIDTHS[i], col)
