"""Figure 9(b): native-code slowdown per SPEC program and watermark
size, measured (as in the paper) on the *ref* inputs after profiling
on the *train* inputs.

Paper: "For most of the programs tested, the slowdown is quite small
(less than 2%) [...] mean slowdowns range from -0.65% for 128-bit
watermarks to 0.85% for 512-bit watermarks." (Cache-effect speedups
cannot occur in an instruction-count model; see DESIGN.md.)

Our kernels execute 50k-3M instructions rather than SPEC's billions,
so the fixed cost of the branch-function chain is relatively much
larger (see EXPERIMENTS.md); the asserted shape is: slowdowns are
bounded, grow with watermark size, and shrink as the program's own
running time grows. Extraction is also verified for every cell.
"""

from benchmarks._util import print_table, run_once
from repro.native import run_image
from repro.native_wm import embed_native, extract_native
from repro.workloads.spec import (
    REF_INPUT,
    SPEC_PROGRAMS,
    TRAIN_INPUT,
    spec_native,
)

WIDTHS = [128, 256, 512]


def test_fig9b_native_slowdown(benchmark):
    def experiment():
        table = {}
        base_steps = {}
        for name in SPEC_PROGRAMS:
            image = spec_native(name)
            base = run_image(image, REF_INPUT).steps
            base_steps[name] = base
            row = []
            for width in WIDTHS:
                wm = (1 << width) // 3
                emb = embed_native(image, wm, width, TRAIN_INPUT)
                steps = run_image(emb.image, REF_INPUT).steps
                extracted = extract_native(
                    emb.image, width, emb.begin, emb.end, TRAIN_INPUT
                ).watermark == wm
                row.append((steps / base - 1.0, extracted))
            table[name] = row
        return base_steps, table

    base_steps, table = run_once(benchmark, experiment)

    rows = []
    for name in SPEC_PROGRAMS:
        cells = [f"{slow:+.2%}{'' if ok else ' (!)'}"
                 for slow, ok in table[name]]
        rows.append((name, f"{base_steps[name]:,}", *cells))
    means = [
        sum(table[n][i][0] for n in SPEC_PROGRAMS) / len(SPEC_PROGRAMS)
        for i in range(len(WIDTHS))
    ]
    rows.append(("MEAN", "", *(f"{m:+.2%}" for m in means)))
    print_table(
        "Figure 9(b) - native slowdown on ref inputs "
        "(train-input profiles)",
        ("program", "base steps", "128 bits", "256 bits", "512 bits"),
        rows,
    )

    for name in SPEC_PROGRAMS:
        for slow, extracted in table[name]:
            assert extracted, f"{name}: watermark lost on ref build"
            assert -0.01 <= slow < 1.0, (name, slow)
        # Larger marks never get cheaper.
        slows = [s for s, _ in table[name]]
        assert slows[0] <= slows[2] + 0.01, name
    # Long-running programs amortize the chain: the slowest-running
    # kernel must show one of the smallest 128-bit slowdowns.
    longest = max(SPEC_PROGRAMS, key=lambda n: base_steps[n])
    col128 = sorted(table[n][0][0] for n in SPEC_PROGRAMS)
    assert table[longest][0][0] <= col128[len(col128) // 2]
