"""Ablation: frequency-weighted vs. uniform piece placement.

The paper attributes Figure 8(a)'s behavior to "the weighted random
location choice described in Section 3.2 [which] selects infrequently
executed locations as insertion points". This ablation embeds the
same watermark with the inverse-frequency policy and with a uniform
policy and compares the runtime cost on the hot workload — uniform
placement should be dramatically more expensive, which is the whole
argument for the design choice.
"""

from benchmarks._util import print_table, run_once
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.vm import run_module
from repro.workloads import caffeinemark_module

PIECES = 40
INPUTS = [10]
WATERMARK = (1 << 63) // 5


def test_ablation_placement(benchmark):
    def experiment():
        module = caffeinemark_module()
        key = WatermarkKey(secret=b"ablation-placement", inputs=INPUTS)
        base = run_module(module, INPUTS).steps
        out = {}
        for policy in ("inverse", "uniform"):
            marked = embed(module, WATERMARK, key, pieces=PIECES,
                           watermark_bits=64, placement_policy=policy)
            steps = run_module(marked.module, INPUTS).steps
            found = recognize(marked.module, key, watermark_bits=64)
            out[policy] = (steps / base - 1.0,
                           found.complete and found.value == WATERMARK)
        return base, out

    base, out = run_once(benchmark, experiment)

    print_table(
        f"Ablation - placement policy ({PIECES} pieces, "
        f"base {base:,} steps)",
        ("policy", "slowdown", "watermark recovered"),
        [
            (policy, f"{slow:+.1%}", "yes" if ok else "NO")
            for policy, (slow, ok) in out.items()
        ],
    )

    inv_slow, inv_ok = out["inverse"]
    uni_slow, uni_ok = out["uniform"]
    assert inv_ok and uni_ok, "both policies must preserve recognition"
    # The design choice: inverse weighting is much cheaper on hot code.
    assert uni_slow > 2 * inv_slow, (inv_slow, uni_slow)
