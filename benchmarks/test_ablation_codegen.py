"""Ablation: loop-based vs. condition-based piece code generation.

Section 3.2 offers two generators. The loop generator (3.2.1) is
self-contained and works at any executed site; the condition generator
(3.2.2) reuses *existing program variables* captured at trace time, so
its pieces blend into the host — at the price of only working at
multiply-executed sites with usable variables.

This ablation embeds the same mark with condition codegen preferred
vs. disabled (uniform placement so multiply-executed sites actually
get picked) and compares byte cost, runtime cost, and the static
footprint of the generated predicates.
"""

from benchmarks._util import print_table, run_once
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.vm import run_module
from repro.workloads import caffeinemark_module

PIECES = 24
INPUTS = [10]
WATERMARK = (1 << 63) // 11


def test_ablation_codegen(benchmark):
    def experiment():
        module = caffeinemark_module()
        key = WatermarkKey(secret=b"ablation-codegen", inputs=INPUTS)
        base_steps = run_module(module, INPUTS).steps
        out = {}
        for prefer in (True, False):
            marked = embed(module, WATERMARK, key, pieces=PIECES,
                           watermark_bits=64, placement_policy="uniform",
                           prefer_condition=prefer)
            kinds = [p.generator for p in marked.placements]
            steps = run_module(marked.module, INPUTS).steps
            found = recognize(marked.module, key, watermark_bits=64)
            out[prefer] = {
                "condition_pieces": kinds.count("condition"),
                "loop_pieces": kinds.count("loop"),
                "bytes": marked.byte_size_increase,
                "slowdown": steps / base_steps - 1.0,
                "recovered": found.complete and found.value == WATERMARK,
            }
        return out

    out = run_once(benchmark, experiment)

    print_table(
        f"Ablation - piece code generators ({PIECES} pieces, uniform "
        f"placement)",
        ("mode", "condition/loop", "bytes added", "slowdown", "recovered"),
        [
            (
                "condition preferred" if prefer else "loop only",
                f"{o['condition_pieces']}/{o['loop_pieces']}",
                f"{o['bytes']:,}",
                f"{o['slowdown']:+.1%}",
                "yes" if o["recovered"] else "NO",
            )
            for prefer, o in out.items()
        ],
    )

    assert out[True]["recovered"] and out[False]["recovered"]
    # The preference actually engages the condition generator...
    assert out[True]["condition_pieces"] > 0
    # ...and the loop-only mode never does.
    assert out[False]["condition_pieces"] == 0
    # Both stay within the same cost regime (neither is pathological).
    ratio = out[True]["bytes"] / out[False]["bytes"]
    assert 0.5 < ratio < 2.0, ratio
