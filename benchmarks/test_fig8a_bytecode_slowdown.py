"""Figure 8(a): Java-side slowdown vs. number of watermark pieces.

The paper's finding: CaffeineMark ("performance-critical code") slows
down by up to ~80% as pieces are inserted, because once the cold
locations run out the weighted-random placement starts hitting
hotspots; Jess (larger, mostly cold) shows an insignificant slowdown
throughout.

We regenerate both series on the analog workloads. The time metric is
executed WVM instructions (deterministic simulator; see DESIGN.md).
"""

from benchmarks._util import print_table, run_once
from repro.bytecode_wm import WatermarkKey, embed
from repro.vm import run_module
from repro.workloads import caffeinemark_module, jess_module

PIECES = [0, 25, 50, 100, 200, 300]
WATERMARK = (1 << 127) // 3
CM_INPUT = [10]
JESS_INPUT = [7, 13]


def _slowdown_series(module_factory, inputs, secret):
    key = WatermarkKey(secret=secret, inputs=inputs)
    base_module = module_factory()
    base = run_module(base_module, inputs).steps
    series = []
    for pieces in PIECES:
        if pieces == 0:
            series.append(0.0)
            continue
        marked = embed(base_module, WATERMARK, key, pieces=pieces,
                       watermark_bits=128)
        steps = run_module(marked.module, inputs).steps
        series.append(steps / base - 1.0)
    return base, series


def test_fig8a_bytecode_slowdown(benchmark):
    def experiment():
        cm_base, cm = _slowdown_series(
            caffeinemark_module, CM_INPUT, b"fig8a-cm"
        )
        jess_base, jess = _slowdown_series(
            lambda: jess_module(), JESS_INPUT, b"fig8a-jess"
        )
        return cm_base, cm, jess_base, jess

    cm_base, cm, jess_base, jess = run_once(benchmark, experiment)

    print_table(
        f"Figure 8(a) - slowdown vs pieces "
        f"(CaffeineMark base {cm_base:,} steps, Jess base {jess_base:,})",
        ("pieces", "caffeinemark slowdown", "jess slowdown"),
        [
            (p, f"{c:+.1%}", f"{j:+.1%}")
            for p, c, j in zip(PIECES, cm, jess)
        ],
    )

    # Paper shape: CaffeineMark degrades substantially at high piece
    # counts; Jess stays essentially flat; CaffeineMark >> Jess at max.
    assert cm[-1] > 0.20, "hot workload should slow down noticeably"
    assert jess[-1] < cm[-1] / 2, "cold workload should be hit far less"
    assert jess[-1] < 0.40, "Jess-like slowdown should stay modest"
    # Both grow (weakly) with piece count.
    assert cm[-1] >= cm[1]
    assert jess[-1] >= 0.0
