"""Batch fingerprinting throughput: copies/second vs. worker count.

Not a paper figure — this is the repo's own performance trajectory for
the production batch pipeline (ROADMAP north star). It reports:

* **naive** — N independent ``embed`` calls, each re-tracing from
  scratch (the pre-pipeline cost model, O(N × full pipeline));
* **batch w=1** — the shared-preparation pipeline, serial;
* **batch w=4** — the same fanned out over 4 worker processes.

Assertions are deliberately hardware-aware: the preparation-cache
speedup is architectural and must show on any machine, while the
multi-worker speedup is only asserted when the host actually has the
cores to parallelize on (the acceptance bar is ≥2× at 4 workers on a
≥4-core host).
"""

from __future__ import annotations

import os
import time

from benchmarks._util import print_table, run_once
from repro.bytecode_wm import WatermarkKey, embed
from repro.pipeline import prepare, run_batch, sequential_specs
from repro.workloads import jess_module

COPIES = 16
WORKER_COUNTS = (1, 4)
#: Big-and-cold rule engine: tracing dominates a single-shot embed,
#: which is exactly the regime batching is built for.
RULES, BURN = 24, 4000


def _measure(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _experiment():
    module = jess_module(rule_count=RULES, burn=BURN)
    key = WatermarkKey(secret=b"throughput-bench", inputs=[7, 13])
    specs = sequential_specs(COPIES, start_watermark=1001)

    # Baseline: mint each copy independently, re-tracing every time
    # (no self-check — this row measures minting alone).
    _, naive_seconds = _measure(lambda: [
        embed(module, s.watermark, key, pieces=12, watermark_bits=16)
        for s in specs
    ])

    prepared, prepare_seconds = _measure(
        lambda: prepare(module, key, 16, pieces=12)
    )

    rows = [("naive re-trace, no check", "-", f"{naive_seconds:.2f}",
             f"{COPIES / naive_seconds:.2f}", "1.00x")]

    # Mint-only batch: same work as the baseline minus the re-trace.
    mint_report, mint_seconds = _measure(
        lambda: run_batch(prepared, specs, workers=1, self_check=False)
    )
    assert mint_report.all_ok
    rows.append((
        "batch w=1, no check", f"{prepare_seconds:.2f}",
        f"{mint_seconds:.2f}", f"{COPIES / mint_seconds:.2f}",
        f"{naive_seconds / mint_seconds:.2f}x",
    ))

    # Full pipeline (every copy re-run + re-recognized in-worker).
    checked_seconds = {}
    for workers in WORKER_COUNTS:
        report, seconds = _measure(
            lambda w=workers: run_batch(prepared, specs, workers=w)
        )
        assert report.all_ok, "throughput run must self-check clean"
        assert all(c.checked and c.self_check for c in report.copies)
        checked_seconds[workers] = seconds
        rows.append((
            f"batch w={workers}, self-check", f"{prepare_seconds:.2f}",
            f"{seconds:.2f}", f"{COPIES / seconds:.2f}",
            f"{naive_seconds / seconds:.2f}x",
        ))
    return naive_seconds, mint_seconds, checked_seconds, rows


def test_pipeline_throughput(benchmark):
    naive_seconds, mint_seconds, checked_seconds, rows = run_once(
        benchmark, _experiment
    )
    print_table(
        f"Batch fingerprinting throughput ({COPIES} copies, jess "
        f"rules={RULES} burn={BURN})",
        ("pipeline", "prepare s", "embed s", "copies/s", "vs naive"),
        rows,
    )
    # Architectural win: sharing the trace must beat re-tracing per
    # copy on any hardware (like-for-like: neither side self-checks).
    assert mint_seconds < naive_seconds, (
        "shared preparation failed to beat naive per-copy re-tracing"
    )
    # Parallel win: only meaningful where cores exist to use.
    cores = os.cpu_count() or 1
    if cores >= 4:
        speedup = checked_seconds[1] / checked_seconds[4]
        assert speedup >= 2.0, (
            f"expected >=2x from 4 workers on a {cores}-core host, "
            f"got {speedup:.2f}x"
        )
