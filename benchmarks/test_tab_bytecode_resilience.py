"""Section 5.1.2 resilience table (Java-side distortive attacks).

Paper: "SandMark implements 40 distortive attacks against watermarks,
including basic block copying, statement reordering, and method and
class splitting and merging. Only class encryption and branch
insertion were able to destroy the watermark."

We run the layout/reorder/inversion/inlining battery plus heavy branch
insertion and the class-encryption analog, and assert exactly that
split: every layout attack leaves the watermark recoverable; heavy
branch insertion destroys it; class encryption defeats the
instrumentation-based tracer but not the JVM-level tracer.
"""

import random

from benchmarks._util import print_table, run_once
from repro.attacks.bytecode import (
    SealedAccessError,
    insert_branches,
    instrument_for_tracing,
    jvm_level_trace,
    run_attack_suite,
    seal_module,
)
from repro.bytecode_wm import WatermarkKey, embed, recognize, recognize_bits
from repro.core.bitstring import decode_bits
from repro.vm import VMError
from repro.workloads import jess_module

WATERMARK = 0xFEED
INPUTS = [7, 13]


def test_tab_bytecode_resilience(benchmark):
    def experiment():
        key = WatermarkKey(secret=b"tab51", inputs=INPUTS)
        marked = embed(jess_module(rule_count=36, burn=4000), WATERMARK, key,
                       pieces=16, watermark_bits=16)
        outcomes = run_attack_suite(marked, key, probe_inputs=[[3, 5]])

        # Heavy branch insertion (the one distortive attack that wins).
        heavy = insert_branches(marked.module, 400, random.Random(5))
        try:
            heavy_found = recognize(heavy, key, watermark_bits=16)
            heavy_ok = heavy_found.complete and heavy_found.value == WATERMARK
        except VMError:
            heavy_ok = False

        # Class encryption: instrumentation fails, JVM-level tracing works.
        sealed = seal_module(marked.module)
        try:
            instrument_for_tracing(sealed)
            instrumentation_blocked = False
        except SealedAccessError:
            instrumentation_blocked = True
        trace = jvm_level_trace(sealed, key.inputs)
        jvm_found = recognize_bits(
            decode_bits(trace.trace.branch_pairs()), key, 16
        )
        return outcomes, heavy_ok, instrumentation_blocked, jvm_found

    outcomes, heavy_ok, blocked, jvm_found = run_once(benchmark, experiment)

    rows = [(o.name, "yes" if o.program_ok else "NO",
             "survives" if o.watermark_found else "DESTROYED")
            for o in outcomes]
    rows.append(("branch-insertion-heavy-400", "yes",
                 "survives" if heavy_ok else "DESTROYED"))
    rows.append(("class-encryption (instrumented tracer)", "yes",
                 "DESTROYED" if blocked else "survives"))
    rows.append(("class-encryption (JVM-level tracer)", "yes",
                 "survives" if jvm_found.value == WATERMARK else "DESTROYED"))
    print_table(
        "Section 5.1.2 - distortive attack resilience",
        ("attack", "program ok", "watermark"),
        rows,
    )

    # Paper's split: layout attacks lose, the two heavy hitters win.
    for o in outcomes:
        assert o.program_ok, o.name
        if o.name.startswith("branch-insertion"):
            continue  # light insertion may or may not land on pieces
        assert o.watermark_found, o.name
    assert not heavy_ok, "heavy branch insertion must destroy the mark"
    assert blocked, "class encryption must defeat the instrumenter"
    assert jvm_found.complete and jvm_found.value == WATERMARK
