"""Figure 5: watermark pieces recovered intact vs. P(successful recovery).

The paper plots, for a 768-bit watermark W, the empirical probability
of recovering W against the number of statements left intact, next to
the theoretical approximation of Eq. (1). We regenerate both series:

* *theory* — the exact inclusion-exclusion probability that k
  surviving random edges of K_n leave no modulus uncovered;
* *empirical (coverage)* — Monte Carlo over random surviving subsets;
* *empirical (end-to-end)* — for a few k values, a full bit-level run:
  statements are enumerated, encrypted, planted in a synthetic trace
  bit-string, randomly deleted down to k, and handed to the actual
  recovery algorithm.

Expected shape: a sharp S-curve rising from ~0 to ~1 as k passes the
coverage threshold, with empirical points tracking the formula.
"""

import random

from benchmarks._util import monotone_nondecreasing, print_table, run_once
from repro.bytecode_wm import WatermarkKey
from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.enumeration import StatementEnumeration
from repro.core.primes import choose_moduli
from repro.core.probability import (
    simulate_k_intact,
    success_probability_k_intact,
)
from repro.core.recovery import recover
from repro.core.splitting import split

WATERMARK_BITS = 768
KEY = WatermarkKey(secret=b"fig5", inputs=[])


def _end_to_end_probability(moduli, k, trials=6, watermark=None):
    """Full recovery probability with k intact pieces, at the bit level."""
    enum = StatementEnumeration(moduli)
    cipher = KEY.cipher()
    watermark = watermark if watermark is not None else (1 << 767) // 7
    r = len(moduli)
    pair_count = r * (r - 1) // 2
    all_pieces = split(watermark, moduli, pair_count)
    successes = 0
    for t in range(trials):
        rng = random.Random(1000 + t)
        surviving = rng.sample(all_pieces, k)
        bits = [rng.randint(0, 1) for _ in range(32)]
        for stmt in surviving:
            block = cipher.encrypt_block(enum.encode(stmt))
            bits.extend(int_to_bits_lsb_first(block, 64))
            bits.extend(rng.randint(0, 1) for _ in range(16))
        result = recover(bits, cipher, enum)
        if result.complete and result.value == watermark:
            successes += 1
    return successes / trials


def test_fig5_recovery_probability(benchmark):
    moduli = choose_moduli(WATERMARK_BITS)
    n = len(moduli)
    pair_count = n * (n - 1) // 2

    def experiment():
        ks = sorted({max(1, int(pair_count * f)) for f in
                     (0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.18, 0.25, 0.4)})
        theory = [success_probability_k_intact(n, k) for k in ks]
        empirical = [simulate_k_intact(n, k, trials=400,
                                       rng=random.Random(k))
                     for k in ks]
        # End-to-end spot checks at a low, a middling, and a high k.
        spot_ks = [ks[1], ks[len(ks) // 2], ks[-1]]
        spot = {k: _end_to_end_probability(moduli, k) for k in spot_ks}
        return ks, theory, empirical, spot

    ks, theory, empirical, spot = run_once(benchmark, experiment)

    rows = []
    for k, th, em in zip(ks, theory, empirical):
        e2e = f"{spot[k]:.2f}" if k in spot else ""
        rows.append((k, f"{th:.3f}", f"{em:.3f}", e2e))
    print_table(
        f"Figure 5 - {WATERMARK_BITS}-bit watermark, {n} moduli, "
        f"{n * (n - 1) // 2} possible pieces",
        ("pieces intact", "theory Eq.(1)", "empirical", "end-to-end"),
        rows,
    )

    # Shape: S-curve from ~0 to ~1; empirical tracks theory closely.
    assert theory[0] < 0.05
    assert theory[-1] > 0.95
    assert monotone_nondecreasing(theory, slack=1e-9)
    for th, em in zip(theory, empirical):
        assert abs(th - em) < 0.12
    # End-to-end recovery agrees with the coverage model.
    for k, p in spot.items():
        assert abs(p - success_probability_k_intact(n, k)) < 0.45
