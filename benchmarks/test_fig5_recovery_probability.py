"""Figure 5: watermark pieces recovered intact vs. P(successful recovery).

The paper plots, for a 768-bit watermark W, the empirical probability
of recovering W against the number of statements left intact, next to
the theoretical approximation of Eq. (1). We regenerate both series:

* *theory* — the exact inclusion-exclusion probability that k
  surviving random edges of K_n leave no modulus uncovered;
* *empirical (coverage)* — Monte Carlo over random surviving subsets;
* *empirical (end-to-end)* — for a few k values, a full bit-level run:
  statements are enumerated, encrypted, planted in a synthetic trace
  bit-string, randomly deleted down to k, and handed to the actual
  recovery algorithm.

Expected shape: a sharp S-curve rising from ~0 to ~1 as k passes the
coverage threshold, with empirical points tracking the formula.

A second sweep (:func:`test_fig5_codec_recovery`) extends the figure
with the codec axis: the same bit-level plant-delete-recover loop runs
for each registered codec under loss patterns chosen to separate them —
uniform loss (where GCRT's heavy replication shines), a residue-class
knockout (where pure GCRT is structurally blind and the hybrid's
parity rescue answers), and a wiped statement channel (where only
position-addressed symbols survive).
"""

import random
import zlib

from benchmarks._util import monotone_nondecreasing, print_table, run_once
from repro.bytecode_wm import WatermarkKey
from repro.codec import resolve_codec
from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.enumeration import StatementEnumeration
from repro.core.primes import choose_moduli
from repro.core.probability import (
    simulate_k_intact,
    success_probability_k_intact,
)
from repro.core.recovery import recover
from repro.core.splitting import split

WATERMARK_BITS = 768
KEY = WatermarkKey(secret=b"fig5", inputs=[])


def _end_to_end_probability(moduli, k, trials=6, watermark=None):
    """Full recovery probability with k intact pieces, at the bit level."""
    enum = StatementEnumeration(moduli)
    cipher = KEY.cipher()
    watermark = watermark if watermark is not None else (1 << 767) // 7
    r = len(moduli)
    pair_count = r * (r - 1) // 2
    all_pieces = split(watermark, moduli, pair_count)
    successes = 0
    for t in range(trials):
        rng = random.Random(1000 + t)
        surviving = rng.sample(all_pieces, k)
        bits = [rng.randint(0, 1) for _ in range(32)]
        for stmt in surviving:
            block = cipher.encrypt_block(enum.encode(stmt))
            bits.extend(int_to_bits_lsb_first(block, 64))
            bits.extend(rng.randint(0, 1) for _ in range(16))
        result = recover(bits, cipher, enum)
        if result.complete and result.value == watermark:
            successes += 1
    return successes / trials


def test_fig5_recovery_probability(benchmark):
    moduli = choose_moduli(WATERMARK_BITS)
    n = len(moduli)
    pair_count = n * (n - 1) // 2

    def experiment():
        ks = sorted({max(1, int(pair_count * f)) for f in
                     (0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.18, 0.25, 0.4)})
        theory = [success_probability_k_intact(n, k) for k in ks]
        empirical = [simulate_k_intact(n, k, trials=400,
                                       rng=random.Random(k))
                     for k in ks]
        # End-to-end spot checks at a low, a middling, and a high k.
        spot_ks = [ks[1], ks[len(ks) // 2], ks[-1]]
        spot = {k: _end_to_end_probability(moduli, k) for k in spot_ks}
        return ks, theory, empirical, spot

    ks, theory, empirical, spot = run_once(benchmark, experiment)

    rows = []
    for k, th, em in zip(ks, theory, empirical):
        e2e = f"{spot[k]:.2f}" if k in spot else ""
        rows.append((k, f"{th:.3f}", f"{em:.3f}", e2e))
    print_table(
        f"Figure 5 - {WATERMARK_BITS}-bit watermark, {n} moduli, "
        f"{n * (n - 1) // 2} possible pieces",
        ("pieces intact", "theory Eq.(1)", "empirical", "end-to-end"),
        rows,
    )

    # Shape: S-curve from ~0 to ~1; empirical tracks theory closely.
    assert theory[0] < 0.05
    assert theory[-1] > 0.95
    assert monotone_nondecreasing(theory, slack=1e-9)
    for th, em in zip(theory, empirical):
        assert abs(th - em) < 0.12
    # End-to-end recovery agrees with the coverage model.
    for k, p in spot.items():
        assert abs(p - success_probability_k_intact(n, k)) < 0.45


# -- codec axis -------------------------------------------------------------

CODECS = ["gcrt", "rs-8", "hybrid-4"]
CODEC_KEY = WatermarkKey(secret=b"fig5-codec", inputs=[])
CODEC_TRIALS = 3


def _plant(blocks, rng):
    """Lay encrypted blocks into a synthetic trace with junk padding."""
    bits = [rng.randint(0, 1) for _ in range(32)]
    for block in blocks:
        bits.extend(int_to_bits_lsb_first(block, 64))
        bits.extend(rng.randint(0, 1) for _ in range(16))
    return bits


def _keep_uniform(keep):
    """Uniform loss: a random ``keep``-piece subset survives."""
    def survive(pieces, rng):
        return rng.sample(pieces, min(keep, len(pieces)))
    return survive


def _keep_knockout(pieces, rng):
    """Residue-class knockout: every piece touching modulus 0 dies.

    This models an attack (or an optimizer) that happens to rewrite
    every instance of one planted statement class. Codecs without a
    residue channel offer the attack no structural handle, so they
    lose a uniform subset of the same expected size (two-thirds of the
    pieces — the share of K_3 pairs touching one modulus).
    """
    targeted = [
        p for p in pieces
        if p.statement is not None and 0 in (p.statement.i, p.statement.j)
    ]
    if targeted:
        doomed = {id(p) for p in targeted}
        return [p for p in pieces if id(p) not in doomed]
    return rng.sample(pieces, len(pieces) - 2 * len(pieces) // 3)


def _keep_wiped(pieces, rng):
    """Statement channel wiped: only position-addressed symbols survive."""
    return [p for p in pieces if p.statement is None]


def _codec_recovery(codec, bits_width, piece_count, survive, trial):
    watermark = ((1 << (bits_width - 1)) // 7) | 1
    cipher = CODEC_KEY.cipher()
    seed = zlib.crc32(
        f"fig5-codec/{codec.spec}/{bits_width}/{piece_count}/{trial}".encode()
    )
    pieces = codec.encode(
        watermark, bits_width, piece_count, cipher, random.Random(seed)
    )
    rng = random.Random(seed ^ 0x5EED)
    kept = survive(pieces, rng)
    trace = _plant([p.block for p in kept], rng)
    result = codec.decode(trace, bits_width, cipher)
    return result.complete and result.value == watermark


def test_fig5_codec_recovery(benchmark):
    scenarios = [
        # (label, bits, pieces, survival pattern)
        ("no loss", 64, 40, _keep_uniform(40)),
        ("uniform, 16/40 survive", 64, 40, _keep_uniform(16)),
        ("uniform, 6/40 survive", 64, 40, _keep_uniform(6)),
        ("residue-class knockout", 64, 40, _keep_knockout),
        ("statement channel wiped", 16, 16, _keep_wiped),
    ]

    def experiment():
        rates = {}
        for label, bits_width, pieces, survive in scenarios:
            for spec in CODECS:
                codec = resolve_codec(spec)
                wins = sum(
                    _codec_recovery(codec, bits_width, pieces, survive, t)
                    for t in range(CODEC_TRIALS)
                )
                rates[(label, spec)] = wins / CODEC_TRIALS
        return rates

    rates = run_once(benchmark, experiment)

    print_table(
        "Figure 5 (codec axis) - recovery rate by loss pattern",
        ("loss pattern", "bits", *CODECS),
        [
            (label, bits_width,
             *(f"{rates[(label, spec)]:.2f}" for spec in CODECS))
            for label, bits_width, _, _ in scenarios
        ],
    )

    # Intact embeds decode under every codec.
    assert all(rates[("no loss", spec)] == 1.0 for spec in CODECS)
    # Under uniform loss GCRT's few-classes/heavy-replication layout is
    # at least as durable as RS's many-distinct-positions layout.
    assert (rates[("uniform, 6/40 survive", "gcrt")]
            >= rates[("uniform, 6/40 survive", "rs-8")])
    assert rates[("uniform, 6/40 survive", "hybrid-4")] > 0.5
    # The knockout leaves a modulus uncovered: pure GCRT is structurally
    # blind, while the hybrid's parity channel rescues the congruence.
    assert rates[("residue-class knockout", "gcrt")] == 0.0
    assert rates[("residue-class knockout", "hybrid-4")] > 0.5
    # With the statement channel gone only position-addressed codecs
    # answer (the hybrid via its blind parity scan of the 16-bit space).
    assert rates[("statement channel wiped", "gcrt")] == 0.0
    assert rates[("statement channel wiped", "rs-8")] == 1.0
    assert rates[("statement channel wiped", "hybrid-4")] > 0.5
