"""Tests for the branch-chaining, constant-unfolding and loop-peeling
attacks (the remaining transformations named in the paper's Section 1)."""

import random

import pytest

from repro.attacks.bytecode import (
    chain_branches,
    peel_loops,
    unfold_constants,
)
from repro.attacks.bytecode.unrolling import peel_one_loop
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.core.bitstring import decode_bits
from repro.vm import run_module, verify_module
from repro.workloads import (
    CAFFEINEMARK_INPUT,
    caffeinemark_module,
    collatz_module,
    gcd_module,
)

KEY = WatermarkKey(secret=b"chain", inputs=[27])


@pytest.fixture(scope="module")
def embedded():
    return embed(collatz_module(), 0xC0DE, KEY, watermark_bits=16, pieces=8)


def bits_of(module, inputs):
    result = run_module(module, inputs, trace_mode="branch")
    return decode_bits(result.trace.branch_pairs())


class TestBranchChaining:
    def test_semantics(self, embedded):
        attacked = chain_branches(embedded.module, 40, random.Random(1))
        verify_module(attacked)
        for inputs in ([27], [7], [95]):
            assert run_module(attacked, inputs).output == \
                run_module(embedded.module, inputs).output

    def test_bitstring_invariant(self, embedded):
        """Chained gotos are unconditional: zero effect on the bits."""
        attacked = chain_branches(embedded.module, 40, random.Random(1))
        assert bits_of(attacked, [27]) == bits_of(embedded.module, [27])

    def test_watermark_survives(self, embedded):
        attacked = chain_branches(embedded.module, 40, random.Random(2))
        found = recognize(attacked, KEY, watermark_bits=16)
        assert found.value == 0xC0DE

    def test_grows_code(self, embedded):
        attacked = chain_branches(embedded.module, 20, random.Random(3))
        assert attacked.byte_size() > embedded.module.byte_size()


class TestConstantUnfolding:
    def test_semantics(self, embedded):
        attacked = unfold_constants(embedded.module, 80, random.Random(1))
        verify_module(attacked)
        for inputs in ([27], [7]):
            assert run_module(attacked, inputs).output == \
                run_module(embedded.module, inputs).output

    def test_bitstring_invariant(self, embedded):
        attacked = unfold_constants(embedded.module, 80, random.Random(1))
        assert bits_of(attacked, [27]) == bits_of(embedded.module, [27])

    def test_watermark_survives(self, embedded):
        attacked = unfold_constants(embedded.module, 80, random.Random(4))
        assert recognize(attacked, KEY, watermark_bits=16).value == 0xC0DE

    def test_actually_unfolds(self):
        module = gcd_module()
        attacked = unfold_constants(module, 10, random.Random(0))
        before = sum(1 for fn in module.functions.values()
                     for i in fn.real_instructions() if i.op == "const")
        after = sum(1 for fn in attacked.functions.values()
                    for i in fn.real_instructions() if i.op == "const")
        assert after > before


@pytest.mark.slow
class TestLoopPeeling:
    def test_peels_a_real_loop(self):
        module = caffeinemark_module()
        fn = module.functions["loop_bench"]
        before = module.byte_size()
        assert peel_one_loop(module, fn, random.Random(0))
        assert module.byte_size() > before
        verify_module(module)
        assert run_module(module, CAFFEINEMARK_INPUT).output == \
            run_module(caffeinemark_module(), CAFFEINEMARK_INPUT).output

    def test_semantics_across_inputs(self, embedded):
        attacked = peel_loops(embedded.module, 3, random.Random(1))
        verify_module(attacked)
        for inputs in ([27], [7], [871]):
            assert run_module(attacked, inputs).output == \
                run_module(embedded.module, inputs).output

    def test_watermark_survives(self, embedded):
        attacked = peel_loops(embedded.module, 3, random.Random(2))
        assert recognize(attacked, KEY, watermark_bits=16).value == 0xC0DE

    def test_failure_leaves_module_untouched(self):
        """A function with no loops cannot be peeled, and trying must
        not corrupt it (regression: entry-edge retargeting must not
        leak through shared instruction objects)."""
        module = gcd_module()
        fn = module.functions["main"]  # straight-line; no loops
        code_before = [(i.op, i.arg) for i in fn.code]
        assert not peel_one_loop(module, fn, random.Random(0))
        assert [(i.op, i.arg) for i in fn.code] == code_before
        verify_module(module)

    def test_peeling_is_stackable(self, embedded):
        once = peel_loops(embedded.module, 1, random.Random(5))
        twice = peel_loops(once, 1, random.Random(6))
        verify_module(twice)
        assert run_module(twice, [27]).output == \
            run_module(embedded.module, [27]).output
        assert recognize(twice, KEY, watermark_bits=16).value == 0xC0DE
