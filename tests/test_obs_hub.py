"""Tests for the telemetry hub (`repro.obs.journal`).

Unit coverage for the hub itself (rings, journal writes, rotation,
torn tails, the ambient emit path, the span sink) plus one integration
case proving that pool workers inherit the hub through the batch
initializer and land their events in the parent's journal.
"""

import json
import os

import pytest

from repro import obs
from repro.bytecode_wm import WatermarkKey
from repro.obs.journal import (
    Event,
    HubConfig,
    TelemetryHub,
    emit,
    get_hub,
    journal_segments,
    read_events,
    read_journal,
    read_spans,
    set_hub,
)
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import prepare, run_batch, sequential_specs
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"hub-key", inputs=[25, 10])


def make_hub(tmp_path, **overrides):
    defaults = dict(journal_path=str(tmp_path / "journal.jsonl"))
    defaults.update(overrides)
    return TelemetryHub(HubConfig(**defaults))


class TestEvent:
    def test_round_trip(self):
        event = Event(kind="embed", name="copy-1", unix=12.5,
                      attrs={"ok": True}, trace_id="t", span_id="s")
        assert Event.from_dict(event.to_dict()) == event
        assert event.to_dict()["rec"] == "event"

    def test_matches_filters(self):
        event = Event(kind="http.request", name="/v1/embed",
                      attrs={"route": "/v1/embed"})
        assert event.matches()
        assert event.matches(kind="http.request")
        assert not event.matches(kind="fault")
        assert event.matches(name="/v1/*")
        assert not event.matches(name="/v2/*")
        assert event.matches(route="/v1/embed")
        assert not event.matches(route="/v1/recognize")

    def test_route_falls_back_to_name(self):
        event = Event(kind="circuit", name="/v1/embed")
        assert event.matches(route="/v1/embed")


class TestHubConfig:
    @pytest.mark.parametrize("field,value", [
        ("ring_events", 0), ("ring_spans", 0),
        ("max_bytes", 0), ("max_segments", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            HubConfig(**{field: value})

    def test_worker_config_never_rotates_or_journals_spans(self, tmp_path):
        hub = make_hub(tmp_path)
        worker = hub.worker_config()
        assert worker.journal_path == hub.config.journal_path
        assert worker.rotate is False
        assert worker.record_spans is False


class TestTelemetryHub:
    def test_emit_lands_in_ring_and_journal(self, tmp_path):
        hub = make_hub(tmp_path)
        hub.emit("embed", "copy-1", ok=True)
        hub.emit("recognize", "d1", complete=False)
        assert hub.emitted == 2
        tail = hub.tail()
        assert [e.kind for e in tail] == ["embed", "recognize"]
        events = read_events(str(tmp_path))
        assert [e.name for e in events] == ["copy-1", "d1"]
        assert events[0].attrs == {"ok": True}
        hub.close()

    def test_tail_filters_and_limit(self, tmp_path):
        hub = TelemetryHub(HubConfig())  # ring-only, no journal
        for index in range(10):
            hub.emit("copy", f"copy-{index:02d}")
        hub.emit("fault", "daemon.job")
        assert len(hub.tail(limit=5)) == 5
        assert [e.kind for e in hub.tail(kind="fault")] == ["fault"]
        assert len(hub.tail(name="copy-0*")) == 10

    def test_ring_is_bounded_but_counter_is_not(self, tmp_path):
        hub = TelemetryHub(HubConfig(ring_events=4))
        for index in range(10):
            hub.emit("copy", str(index))
        assert hub.emitted == 10
        assert [e.name for e in hub.tail()] == ["6", "7", "8", "9"]

    def test_rotation_shifts_segments(self, tmp_path):
        hub = make_hub(tmp_path, max_bytes=200, max_segments=3)
        for index in range(30):
            hub.emit("copy", f"copy-{index:04d}")
        hub.close()
        segments = journal_segments(str(tmp_path / "journal.jsonl"))
        assert len(segments) > 1
        # Oldest-first concatenation stays chronological.
        names = [e.name for e in read_events(str(tmp_path))]
        assert names == sorted(names)
        assert names[-1] == "copy-0029"

    def test_rotation_drops_beyond_max_segments(self, tmp_path):
        hub = make_hub(tmp_path, max_bytes=120, max_segments=2)
        for index in range(40):
            hub.emit("copy", f"copy-{index:04d}")
        hub.close()
        segments = journal_segments(str(tmp_path / "journal.jsonl"))
        assert len(segments) <= 2
        names = [e.name for e in read_events(str(tmp_path))]
        assert names[-1] == "copy-0039"
        assert "copy-0000" not in names  # oldest history was dropped

    def test_torn_final_line_is_tolerated(self, tmp_path):
        hub = make_hub(tmp_path)
        hub.emit("embed", "whole")
        hub.close()
        path = tmp_path / "journal.jsonl"
        with open(path, "a") as fp:
            fp.write('{"rec": "event", "kind": "embed", "na')
        events = read_events(str(path))
        assert [e.name for e in events] == ["whole"]

    def test_non_event_records_are_skipped_by_read_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "w") as fp:
            fp.write(json.dumps({"rec": "span", "name": "x",
                                 "trace_id": "t", "span_id": "s",
                                 "parent_id": None,
                                 "start_unix": 0.0}) + "\n")
            fp.write(json.dumps({"rec": "metrics", "samples": []}) + "\n")
            fp.write("not json at all\n")
        assert read_events(str(path)) == []
        assert len(read_spans(str(path))) == 1
        assert len(list(read_journal(str(path)))) == 2

    def test_snapshot_metrics_record(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc()
        hub = make_hub(tmp_path)
        hub.snapshot_metrics(registry)
        hub.close()
        docs = list(read_journal(str(tmp_path)))
        assert docs[0]["rec"] == "metrics"
        assert docs[0]["samples"]

    def test_journal_bytes(self, tmp_path):
        hub = make_hub(tmp_path)
        assert hub.journal_bytes() == 0
        hub.emit("copy", "c")
        assert hub.journal_bytes() > 0
        hub.close()
        assert TelemetryHub(HubConfig()).journal_bytes() == 0

    def test_missing_journal_dir_is_created(self, tmp_path):
        nested = tmp_path / "a" / "b" / "journal.jsonl"
        hub = TelemetryHub(HubConfig(journal_path=str(nested)))
        hub.emit("copy", "c")
        hub.close()
        assert nested.exists()


class TestAmbientHub:
    def test_emit_is_noop_without_hub(self):
        assert get_hub() is None
        assert emit("embed", "nobody-home") is None

    def test_set_hub_returns_previous(self, tmp_path):
        first = TelemetryHub(HubConfig())
        assert set_hub(first) is None
        second = TelemetryHub(HubConfig())
        assert set_hub(second) is first
        set_hub(None)

    def test_module_emit_reaches_hub(self, tmp_path):
        hub = TelemetryHub(HubConfig())
        set_hub(hub)
        emit("fault", "site", action="raise")
        assert [e.kind for e in hub.tail()] == ["fault"]
        set_hub(None)


class TestSpanSink:
    def test_finished_spans_fan_into_journal(self, tmp_path):
        hub = make_hub(tmp_path)
        set_hub(hub)
        tracer = obs.enable_tracing()
        try:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        finally:
            obs.disable_tracing()
            set_hub(None)
        hub.close()
        spans = read_spans(str(tmp_path))
        assert sorted(s.name for s in spans) == ["inner", "outer"]
        assert len({s.trace_id for s in spans}) == 1
        assert len(hub.recent_spans()) == 2
        assert len(hub.recent_traces()) == 1
        assert tracer.finished

    def test_record_spans_false_keeps_journal_span_free(self, tmp_path):
        hub = make_hub(tmp_path, record_spans=False)
        set_hub(hub)
        obs.enable_tracing()
        try:
            with obs.span("worker-side"):
                pass
        finally:
            obs.disable_tracing()
            set_hub(None)
        hub.close()
        assert read_spans(str(tmp_path)) == []

    def test_adopted_spans_hit_the_sink(self, tmp_path):
        from repro.obs.spans import Span

        hub = make_hub(tmp_path)
        set_hub(hub)
        tracer = obs.enable_tracing()
        try:
            tracer.adopt([Span(name="from-worker", trace_id="t",
                               span_id="s", parent_id=None,
                               start_unix=1.0)])
        finally:
            obs.disable_tracing()
            set_hub(None)
        hub.close()
        assert [s.name for s in read_spans(str(tmp_path))] == ["from-worker"]


class TestObsCli:
    """`repro obs` against a journal built through the real hub."""

    @pytest.fixture()
    def journal_dir(self, tmp_path):
        hub = make_hub(tmp_path)
        set_hub(hub)
        tracer = obs.enable_tracing()
        try:
            with obs.span("http.request", path="/v1/embed"):
                with obs.span("copy", copy_id="copy-0001"):
                    pass
            hub.emit("http.request", "/v1/embed", route="/v1/embed",
                     status=200, seconds=0.2)
            hub.emit("http.request", "/v1/embed", route="/v1/embed",
                     status=500, seconds=0.1)
            hub.emit("recognize", "d", complete=True)
        finally:
            obs.disable_tracing()
            set_hub(None)
            hub.close()
        self.trace_id = tracer.finished[0].trace_id
        return str(tmp_path)

    def run_cli(self, capsys, *argv):
        from repro.cli import main as cli_main
        code = cli_main(list(argv))
        out = capsys.readouterr()
        return code, out.out, out.err

    def test_tail_prints_json_lines(self, journal_dir, capsys):
        code, out, _ = self.run_cli(
            capsys, "obs", "tail", "--journal", journal_dir,
            "--kind", "http.request", "--limit", "1",
        )
        assert code == 0
        lines = [json.loads(line) for line in out.splitlines()]
        assert len(lines) == 1 and lines[0]["attrs"]["status"] == 500

    def test_summary_counts_kinds(self, journal_dir, capsys):
        code, out, _ = self.run_cli(
            capsys, "obs", "summary", "--journal", journal_dir
        )
        assert code == 0
        assert "http.request" in out and "spans" in out

    def test_slo_exit_code_is_the_gate(self, journal_dir, capsys):
        # 1 of 2 embed requests failed: 50% error rate breaches 2%.
        code, out, _ = self.run_cli(
            capsys, "obs", "slo", "--journal", journal_dir
        )
        assert code == 1
        assert "FAIL" in out and "embed-error-rate" in out

    def test_slo_custom_spec_can_pass(self, journal_dir, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"objectives": [
            {"name": "lenient", "kind": "error_rate", "target": 0.9},
        ]}))
        code, out, _ = self.run_cli(
            capsys, "obs", "slo", "--journal", journal_dir,
            "--spec", str(spec),
        )
        assert code == 0 and "ok " in out

    def test_slo_bad_spec_is_usage_error(self, journal_dir, tmp_path,
                                         capsys):
        spec = tmp_path / "bad.json"
        spec.write_text("{}")
        code, _, err = self.run_cli(
            capsys, "obs", "slo", "--journal", journal_dir,
            "--spec", str(spec),
        )
        assert code == 2 and "bad SLO spec" in err

    def test_trace_renders_tree_from_prefix(self, journal_dir, capsys):
        code, out, _ = self.run_cli(
            capsys, "obs", "trace", self.trace_id[:8],
            "--journal", journal_dir,
        )
        assert code == 0
        assert "http.request" in out
        assert "  copy" in out  # child indented under its parent

    def test_trace_unknown_prefix(self, journal_dir, capsys):
        code, _, err = self.run_cli(
            capsys, "obs", "trace", "zzzzzz", "--journal", journal_dir
        )
        assert code == 2 and "no trace matches" in err


class TestBatchIntegration:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(gcd_module(), KEY, 16)

    def test_batch_copy_events_land_in_one_journal(
        self, prepared, tmp_path
    ):
        hub = make_hub(tmp_path)
        set_hub(hub)
        try:
            report = run_batch(prepared, sequential_specs(4), workers=2)
        finally:
            set_hub(None)
            hub.close()
        assert report.all_ok
        events = read_events(str(tmp_path))
        copies = [e for e in events if e.kind == "copy"]
        assert sorted(e.name for e in copies) == [
            "copy-0001", "copy-0002", "copy-0003", "copy-0004"
        ]
        assert all(e.attrs["ok"] and e.attrs["verified"] for e in copies)

    def test_pool_workers_journal_their_fault_events(
        self, prepared, tmp_path
    ):
        """The initializer hands workers the hub config: a fault that
        fires *inside a pool process* still lands in the journal."""
        from repro import faults
        from repro.faults import FaultPlan, FaultRule
        from repro.faults.retry import RetryPolicy

        # The once-guard is filesystem-backed: fresh pool processes on
        # retry rounds must not re-fire the rule forever.
        plan = FaultPlan([FaultRule(site="batch.worker.task",
                                    action="raise", times=1,
                                    once_token="hub-worker-fault",
                                    state_dir=str(tmp_path))])
        hub = make_hub(tmp_path)
        set_hub(hub)
        faults.install(plan)
        try:
            report = run_batch(
                prepared, sequential_specs(3), workers=2,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            )
        finally:
            faults.clear()
            set_hub(None)
            hub.close()
        assert report.all_ok  # the raise was transient; retries recovered
        events = read_events(str(tmp_path))
        fired = [e for e in events if e.kind == "fault"]
        assert fired and fired[0].attrs["site"] == "batch.worker.task"
        retries = [e for e in events if e.kind == "batch.retry"]
        assert retries and retries[0].attrs["count"] >= 1

    def test_single_worker_batch_emits_in_process(self, prepared, tmp_path):
        hub = make_hub(tmp_path)
        set_hub(hub)
        try:
            run_batch(prepared, sequential_specs(2), workers=1)
        finally:
            set_hub(None)
            hub.close()
        copies = [e for e in read_events(str(tmp_path))
                  if e.kind == "copy"]
        assert len(copies) == 2
