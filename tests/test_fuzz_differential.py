"""Differential fuzzing of the wee compilers.

Two generators feed this file. Hypothesis builds random expression
trees and statement lists from scratch (`slow` tier — shrinking makes
them minutes-long). The campaign generator contributes a 50-program
seeded corpus of full programs (loops, calls, recursion, arrays); a
fixed subset runs in the fast tier, the whole corpus under ``-m
slow``. Each program is evaluated three ways — the Python reference
interpreter, the WVM build, and the N32 build — over a 32-bit-safe
value domain where the substrates' integer semantics coincide. Any
divergence is a compiler or interpreter bug.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.generator import differential_check, generate_program
from repro.lang import compile_source
from repro.lang.codegen_native import compile_source_native
from repro.native import run_image
from repro.vm import run_module

# Value domain: keep every intermediate within +/-2^28 so 32-bit and
# 64-bit arithmetic agree and no division overflows occur.
SMALL = st.integers(-1000, 1000)


class Expr:
    """Reference-evaluable expression tree that prints as wee source."""

    def __init__(self, src, value):
        self.src = src
        self.value = value

    def __repr__(self):
        return self.src


def _clip(v):
    # Keep the reference evaluator inside the agreed domain.
    return ((v + (1 << 28)) % (1 << 29)) - (1 << 28)


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        v = draw(SMALL)
        return Expr(str(v) if v >= 0 else f"({v})", v)
    op = draw(st.sampled_from(
        ["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">", ">=",
         "&&", "||"]
    ))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if op == "*":
        # Bound the product: regenerate small literals.
        lv = draw(st.integers(-300, 300))
        rv = draw(st.integers(-300, 300))
        left, right = Expr(f"({lv})", lv), Expr(f"({rv})", rv)
    src = f"({left.src} {op} {right.src})"
    a, b = left.value, right.value
    if op == "&&":
        value = 1 if (a != 0 and b != 0) else 0
    elif op == "||":
        value = 1 if (a != 0 or b != 0) else 0
    elif op in ("<", "<=", "==", "!=", ">", ">="):
        value = int(eval(f"a {op} b"))
    else:
        value = _clip(eval(f"a {op} b"))
        src = f"((({left.src} {op} {right.src}) + 268435456) % 536870912" \
              f" - 268435456)"
        # Mirror the clip in the generated source so all three agree.
        # wee's % matches Python's only for non-negative operands, so
        # shift into non-negative range first: the addend guarantees
        # a + 2^28 >= 0 only within the domain; handled by the clip
        # identity below.
        src = f"(((({left.src} {op} {right.src}) + 268435456) & 536870911)" \
              f" - 268435456)"
    return Expr(src, value)


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(expressions())
def test_expression_differential(expr):
    src = f"fn main() {{ print({expr.src}); return 0; }}"
    vm_out = run_module(compile_source(src)).output
    native_out = run_image(compile_source_native(src)).output
    assert vm_out == native_out == [expr.value], expr.src


@st.composite
def straightline_programs(draw):
    """Random assignments over three variables + a final print."""
    lines = ["var a = 1; var b = 2; var c = 3;"]
    env = {"a": 1, "b": 2, "c": 3}
    for _ in range(draw(st.integers(1, 6))):
        target = draw(st.sampled_from(["a", "b", "c"]))
        lhs = draw(st.sampled_from(["a", "b", "c"]))
        rhs = draw(st.sampled_from(["a", "b", "c"]))
        op = draw(st.sampled_from(["+", "-", "^", "&", "|"]))
        lines.append(f"{target} = ({lhs} {op} {rhs}) & 65535;")
        env[target] = eval(f"(env[lhs] {op} env[rhs]) & 65535",
                           {"env": env, "lhs": lhs, "rhs": rhs})
    lines.append("print(a + b * 3 + c * 7);")
    expected = env["a"] + env["b"] * 3 + env["c"] * 7
    body = "\n    ".join(lines)
    return f"fn main() {{\n    {body}\n    return 0;\n}}", expected


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(straightline_programs())
def test_straightline_differential(case):
    src, expected = case
    vm_out = run_module(compile_source(src)).output
    native_out = run_image(compile_source_native(src)).output
    assert vm_out == native_out == [expected], src


@st.composite
def loop_programs(draw):
    """Counted loops with a branchy body, executed a bounded number of
    times; the reference value is computed in Python."""
    n = draw(st.integers(0, 25))
    threshold = draw(st.integers(0, 25))
    step = draw(st.integers(1, 3))
    acc_ops = draw(st.sampled_from([("+", "-"), ("^", "+"), ("|", "^")]))
    src = f"""
fn main() {{
    var acc = 0;
    for (var i = 0; i < {n}; i = i + {step}) {{
        if (i < {threshold}) {{ acc = (acc {acc_ops[0]} i) & 262143; }}
        else {{ acc = (acc {acc_ops[1]} (i * 3)) & 262143; }}
    }}
    print(acc);
    return 0;
}}
"""
    acc = 0
    i = 0
    while i < n:
        if i < threshold:
            acc = eval(f"(acc {acc_ops[0]} i) & 262143")
        else:
            acc = eval(f"(acc {acc_ops[1]} (i * 3)) & 262143")
        i += step
    return src, acc


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(loop_programs())
def test_loop_differential(case):
    src, expected = case
    vm_out = run_module(compile_source(src)).output
    native_out = run_image(compile_source_native(src)).output
    assert vm_out == native_out == [expected], src


# ---------------------------------------------------------------------------
# Seeded corpus from the campaign generator (full programs: nested
# loops, helpers, recursion, arrays, dead code)
# ---------------------------------------------------------------------------

CORPUS_SEEDS = list(range(50))
#: Enough shape diversity to catch codegen regressions in the fast
#: tier without dragging it: every construct appears within 8 seeds.
FAST_SEEDS = CORPUS_SEEDS[:8]


def _check_three_ways(seed):
    program = generate_program(seed)
    oracle = differential_check(program)
    assert oracle.ok, f"seed {seed}: {oracle.detail}\n{program.source}"
    vm_out = run_module(compile_source(program.source),
                        program.inputs).output
    native_out = run_image(compile_source_native(program.source),
                           program.inputs).output
    assert native_out == vm_out, f"seed {seed}: native diverges"


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_generated_corpus_differential(seed):
    _check_three_ways(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [s for s in CORPUS_SEEDS
                                  if s not in FAST_SEEDS])
def test_generated_corpus_differential_full(seed):
    _check_three_ways(seed)
