"""Tests for the job dispatch layer (`repro.serve.dispatch`).

The fleet dispatcher's claims — bounded in-flight per worker, requeue
on worker loss, load-shed by route priority, Retry-After honored over
private backoff — are exercised against stub HTTP workers so the
tests assert on dispatch behaviour, not embedding speed.
"""

import collections
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import faults, obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.faults import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.obs.journal import HubConfig, TelemetryHub
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import prepare
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.dispatch import (
    WORKER_EJECTED,
    WORKER_HEALTHY,
    WORKER_PROBING,
    WORKER_STATE_CODES,
    WORKER_SUSPECT,
    DispatchOverload,
    FleetDispatcher,
    HealthMonitor,
    Job,
    LocalDispatcher,
    WorkerSpec,
    load_workers,
)
from repro.serve.store import ArtifactStore
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"dispatch-key", inputs=[25, 10])


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    previous = obs.set_registry(MetricsRegistry())
    # The dispatcher must work with *no* hub installed: a regression
    # guard for the bug where telemetry on the no-hub path crashed the
    # send thread and starved caller futures.
    hub = obs.set_hub(None)
    yield
    obs.set_hub(hub)
    obs.set_registry(previous)


# ---------------------------------------------------------------------------
# Stub workers: an HTTP daemon whose behaviour the test scripts
# ---------------------------------------------------------------------------


class _StubHandler(BaseHTTPRequestHandler):
    def do_POST(self):  # noqa: N802 (http.server API)
        length = int(self.headers.get("Content-Length", "0"))
        payload = json.loads(self.rfile.read(length) or b"{}")
        status, doc, headers = self.server.stub.respond(self.path, payload)
        self._reply(status, doc, headers)

    def do_GET(self):  # noqa: N802 (http.server API)
        status, doc, headers = self.server.stub.respond_get(self.path)
        self._reply(status, doc, headers)

    def _reply(self, status, doc, headers):
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


class StubWorker:
    """A scriptable stand-in for a fleet worker daemon.

    Responses come from ``scripted`` (a deque of ``(status, doc,
    headers)``, popped per request) and fall back to a 200 echo.
    ``gate`` (when set) blocks every POST until released, and the
    ``max_active`` high-water mark records true concurrency. Health
    probes (GET /healthz) bypass the gate and answer from the
    ``healthy`` flag, so a test can script probe verdicts while real
    sends stay blocked.
    """

    def __init__(self):
        self.scripted = collections.deque()
        self.requests = []
        self.gate = None
        self.healthy = True
        self.probes = 0
        self.max_active = 0
        self._active = 0
        self._lock = threading.Lock()
        self._server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
        self._server.stub = self
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self._server.server_address[1]}"

    def respond(self, path, payload):
        with self._lock:
            self.requests.append((path, payload))
            self._active += 1
            self.max_active = max(self.max_active, self._active)
        try:
            if self.gate is not None:
                self.gate.wait(timeout=10.0)
            with self._lock:
                if self.scripted:
                    return self.scripted.popleft()
            return 200, {"echo": payload, "path": path}, {}
        finally:
            with self._lock:
                self._active -= 1

    def respond_get(self, path):
        with self._lock:
            self.probes += 1
            if self.healthy:
                return 200, {"status": "ok"}, {}
            return 503, {"status": "draining", "error": "draining"}, {}

    def close(self):
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


@pytest.fixture()
def stub():
    worker = StubWorker()
    yield worker
    worker.close()


def _dead_url():
    """A URL nothing listens on (bound once to pick a free port)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


def _fast_retry(attempts=3):
    return RetryPolicy(max_attempts=attempts, base_delay=0.01,
                       max_delay=0.05, jitter=0.0, seed=7)


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


# ---------------------------------------------------------------------------
# LocalDispatcher: the in-process pool behind the protocol
# ---------------------------------------------------------------------------


class TestLocalDispatcher:
    def test_embed_then_recognize_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        record = store.put(prepare(gcd_module(), KEY, 16, 8))
        dispatcher = LocalDispatcher(store.root, workers=1)
        try:
            embed = dispatcher.submit(Job("/v1/embed", {
                "artifact": record.digest, "copy_id": "c0",
                "watermark": 5, "seed": 1,
            })).result(timeout=60)
            assert embed["ok"] and embed["copy_id"] == "c0"
            recog = dispatcher.submit(Job("/v1/recognize", {
                "artifact": record.digest, "module": embed["module"],
            })).result(timeout=60)
            assert recog["complete"] and recog["value"] == 5
            assert dispatcher.stats()["submitted"] == 2
        finally:
            dispatcher.close()

    def test_unknown_route_fails_the_future(self, tmp_path):
        dispatcher = LocalDispatcher(str(tmp_path), workers=1)
        failures = []
        try:
            job = Job("/v1/nonsense", {},
                      on_error=lambda j, exc: failures.append(exc))
            with pytest.raises(ValueError, match="no local handler"):
                dispatcher.submit(job).result(timeout=10)
            assert len(failures) == 1
        finally:
            dispatcher.close()


# ---------------------------------------------------------------------------
# FleetDispatcher
# ---------------------------------------------------------------------------


class TestFleetDispatcher:
    def test_jobs_complete_and_callbacks_fire(self, stub):
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=2)],
            retry=_fast_retry(),
        )
        done = []
        try:
            futures = [
                dispatcher.submit(Job(
                    "/v1/embed", {"n": n},
                    on_success=lambda job, doc: done.append(doc["echo"]["n"]),
                ))
                for n in range(5)
            ]
            results = [f.result(timeout=10) for f in futures]
            assert sorted(d["echo"]["n"] for d in results) == list(range(5))
            assert sorted(done) == list(range(5))
            stats = dispatcher.stats()
            assert stats["completed"] == 5
            assert stats["errors"] == stats["shed"] == 0
            assert dispatcher.drain(timeout=5.0)
        finally:
            dispatcher.close()

    def test_in_flight_is_bounded_by_worker_capacity(self, stub):
        stub.gate = threading.Event()
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=2)],
            retry=_fast_retry(), poll_interval=0.01,
        )
        try:
            futures = [
                dispatcher.submit(Job("/v1/embed", {"n": n}))
                for n in range(5)
            ]
            # Two slots fill; the other three wait *here*, re-plannable.
            assert _wait_for(
                lambda: dispatcher.stats()["in_flight"]["alpha"] == 2
            )
            time.sleep(0.1)
            stats = dispatcher.stats()
            assert stats["in_flight"]["alpha"] == 2
            assert stats["pending"] == 3
            stub.gate.set()
            for future in futures:
                future.result(timeout=10)
            assert stub.max_active <= 2
        finally:
            stub.gate.set()
            dispatcher.close()

    def test_worker_loss_requeues_until_the_plan_relents(self, stub):
        # A pinned fault plan kills the first two sends; the requeue
        # machinery must carry the job to the third, which lands.
        plan = FaultPlan([
            FaultRule(site="fleet.send", action="raise", times=2),
        ], seed=11)
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=_fast_retry(attempts=4),
        )
        try:
            with faults.injected(plan):
                job = Job("/v1/embed", {"n": 0})
                doc = dispatcher.submit(job).result(timeout=10)
            assert doc["echo"] == {"n": 0}
            assert job.attempts == 3
            stats = dispatcher.stats()
            assert stats["requeues"] == 2
            assert stats["completed"] == 1
            assert stats["errors"] == 0
        finally:
            dispatcher.close()

    def test_exhausted_retries_surface_the_last_error(self, stub):
        plan = FaultPlan([
            FaultRule(site="fleet.send", action="raise", times=None),
        ], seed=11)
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=_fast_retry(attempts=3),
        )
        errors = []
        try:
            with faults.injected(plan):
                job = Job("/v1/embed", {"n": 0},
                          on_error=lambda j, exc: errors.append(exc))
                with pytest.raises(faults.FaultError):
                    dispatcher.submit(job).result(timeout=10)
            assert job.attempts == 3
            assert len(errors) == 1
            assert dispatcher.stats()["requeues"] == 2
        finally:
            dispatcher.close()

    def test_dead_worker_jobs_land_on_the_live_one(self, stub):
        # Overflow past the live worker's capacity spills onto the
        # dead one, fails fast, and requeues back to a live slot.
        stub.gate = threading.Event()
        dispatcher = FleetDispatcher(
            [WorkerSpec("live", stub.url, capacity=1),
             WorkerSpec("dead", _dead_url(), capacity=1)],
            retry=_fast_retry(attempts=8), poll_interval=0.01,
        )
        try:
            futures = [
                dispatcher.submit(Job("/v1/embed", {"n": n}))
                for n in range(3)
            ]
            assert _wait_for(
                lambda: dispatcher.stats()["requeues"] >= 1
            )
            stub.gate.set()
            results = [f.result(timeout=15) for f in futures]
            assert sorted(r["echo"]["n"] for r in results) == [0, 1, 2]
            stats = dispatcher.stats()
            assert stats["completed"] == 3
            # Every job that ultimately completed did so on the live
            # worker; the dead one only ever produced requeues.
            assert stats["requeues"] >= 1
        finally:
            stub.gate.set()
            dispatcher.close()

    def test_load_shed_evicts_lowest_priority_newest_first(self, stub):
        stub.gate = threading.Event()
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=_fast_retry(), poll_interval=0.01, max_pending=2,
        )
        try:
            blocked = dispatcher.submit(Job("/v1/embed", {"n": 0}))
            assert _wait_for(
                lambda: dispatcher.stats()["in_flight"]["alpha"] == 1
            )
            embed_old = dispatcher.submit(Job("/v1/embed", {"n": 1}))
            embed_new = dispatcher.submit(Job("/v1/embed", {"n": 2}))
            # Queue is full. A recognition outranks embeds: the newest
            # embed is shed to make room, the older one keeps its spot.
            recognize = dispatcher.submit(
                Job("/v1/recognize", {"module": "m"})
            )
            with pytest.raises(DispatchOverload) as excinfo:
                embed_new.result(timeout=5)
            assert excinfo.value.retry_after > 0
            assert dispatcher.stats()["shed"] == 1
            stub.gate.set()
            assert blocked.result(timeout=10)["echo"] == {"n": 0}
            assert embed_old.result(timeout=10)["echo"] == {"n": 1}
            assert recognize.result(timeout=10)["path"] == "/v1/recognize"
        finally:
            stub.gate.set()
            dispatcher.close()

    def test_low_priority_incoming_is_shed_immediately(self, stub):
        stub.gate = threading.Event()
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=_fast_retry(), poll_interval=0.01, max_pending=1,
        )
        try:
            dispatcher.submit(Job("/v1/embed", {"n": 0}))
            assert _wait_for(
                lambda: dispatcher.stats()["in_flight"]["alpha"] == 1
            )
            held = dispatcher.submit(Job("/v1/recognize", {"module": "m"}))
            incoming = dispatcher.submit(Job("/v1/embed", {"n": 1}))
            # The queued recognition outranks the incoming embed, so
            # the newcomer itself is the victim.
            with pytest.raises(DispatchOverload):
                incoming.result(timeout=5)
            stub.gate.set()
            assert held.result(timeout=10)["path"] == "/v1/recognize"
        finally:
            stub.gate.set()
            dispatcher.close()

    def test_retry_after_outranks_private_backoff(self, stub):
        # Satellite regression: the 503's Retry-After must reach the
        # dispatcher's requeue delay. The policy's own backoff is 1ms;
        # only the server's number explains a ~0.5s gap.
        stub.scripted.append((503, {"error": "draining"},
                              {"Retry-After": "0.5"}))
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=RetryPolicy(max_attempts=3, base_delay=0.001,
                              max_delay=0.001, jitter=0.0, seed=7),
        )
        try:
            job = Job("/v1/embed", {"n": 0})
            started = time.monotonic()
            doc = dispatcher.submit(job).result(timeout=10)
            elapsed = time.monotonic() - started
            assert doc["echo"] == {"n": 0}
            assert job.attempts == 2
            assert dispatcher.stats()["requeues"] == 1
            assert elapsed >= 0.5
        finally:
            dispatcher.close()

    def test_fatal_status_fails_without_requeue(self, stub):
        stub.scripted.append((404, {"error": "unknown artifact"}, {}))
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=_fast_retry(attempts=5),
        )
        try:
            job = Job("/v1/embed", {"n": 0})
            with pytest.raises(ServiceError) as excinfo:
                dispatcher.submit(job).result(timeout=10)
            assert excinfo.value.status == 404
            assert job.attempts == 1
            stats = dispatcher.stats()
            assert stats["requeues"] == 0
            assert stats["errors"] == 1
        finally:
            dispatcher.close()

    def test_close_fails_parked_jobs(self):
        dispatcher = FleetDispatcher(
            [WorkerSpec("dead", _dead_url(), capacity=1)],
            retry=RetryPolicy(max_attempts=5, base_delay=30.0,
                              jitter=0.0, seed=7),
            poll_interval=0.01,
        )
        job = Job("/v1/embed", {"n": 0})
        future = dispatcher.submit(job)
        # Let the first attempt fail and park the job on its 30s
        # requeue delay, then shut down underneath it.
        assert _wait_for(lambda: dispatcher.stats()["requeues"] == 1)
        dispatcher.close()
        with pytest.raises(DispatchOverload, match="closed"):
            future.result(timeout=5)
        with pytest.raises(RuntimeError, match="closed"):
            dispatcher.submit(Job("/v1/embed", {"n": 1}))

    def test_requeue_wakes_for_the_deadline_not_the_poll_tick(self, stub):
        # Satellite regression: a parked requeue must be retried when
        # its not_before comes due, not when a sleepy poll tick
        # happens by. With a 5s poll interval, only deadline-driven
        # wakeups explain sub-second completion.
        stub.scripted.append((503, {"error": "draining"},
                              {"Retry-After": "0.2"}))
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=RetryPolicy(max_attempts=3, base_delay=0.001,
                              max_delay=0.001, jitter=0.0, seed=7),
            poll_interval=5.0,
        )
        try:
            started = time.monotonic()
            doc = dispatcher.submit(Job("/v1/embed", {"n": 0})).result(
                timeout=10
            )
            elapsed = time.monotonic() - started
            assert doc["echo"] == {"n": 0}
            assert dispatcher.stats()["requeues"] == 1
            assert 0.2 <= elapsed < 2.0
        finally:
            dispatcher.close()

    def test_drain_after_close_returns_false_immediately(self, stub):
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=1)],
            retry=_fast_retry(),
        )
        assert dispatcher.drain(timeout=5.0)
        dispatcher.close()
        started = time.monotonic()
        assert dispatcher.drain(timeout=30.0) is False
        assert time.monotonic() - started < 1.0


# ---------------------------------------------------------------------------
# HealthMonitor: the worker state machine, driven by hand
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestHealthMonitor:
    @staticmethod
    def _flaky_probe(ok):
        """A probe whose verdict the test flips via the `ok` dict."""
        def probe(spec):
            if not ok.get(spec.name, False):
                raise OSError("connection refused")
        return probe

    def test_state_machine_walks_the_full_cycle(self):
        clock = FakeClock()
        ok = {"w": False}
        monitor = HealthMonitor(
            [WorkerSpec("w", "http://unused")], self._flaky_probe(ok),
            eject_threshold=2, readmit_after=10.0, clock=clock,
        )
        assert monitor.state("w") == WORKER_HEALTHY
        assert monitor.available("w") and monitor.any_available()
        monitor.probe_all()
        assert monitor.state("w") == WORKER_SUSPECT
        monitor.probe_all()
        assert monitor.state("w") == WORKER_EJECTED
        assert not monitor.available("w") and not monitor.any_available()
        assert monitor.ejections == 1
        assert 0 < monitor.retry_after() <= 10.0
        # Mid-window the breaker is open: probes are skipped outright.
        monitor.probe_all()
        assert monitor.ejections == 1
        clock.advance(10.0)
        assert monitor.state("w") == WORKER_PROBING
        ok["w"] = True
        monitor.probe_all()
        assert monitor.state("w") == WORKER_HEALTHY
        assert monitor.available("w")
        assert monitor.readmissions == 1

    def test_failed_half_open_probe_reopens_a_full_window(self):
        clock = FakeClock()
        monitor = HealthMonitor(
            [WorkerSpec("w", "http://unused")], self._flaky_probe({}),
            eject_threshold=2, readmit_after=10.0, clock=clock,
        )
        monitor.probe_all()
        monitor.probe_all()
        clock.advance(10.0)
        assert monitor.state("w") == WORKER_PROBING
        monitor.probe_all()  # the half-open probe fails
        assert monitor.state("w") == WORKER_EJECTED
        clock.advance(5.0)
        assert monitor.state("w") == WORKER_EJECTED
        clock.advance(5.0)
        assert monitor.state("w") == WORKER_PROBING

    def test_passive_sends_eject_and_hooks_fire(self):
        clock = FakeClock()
        ejected, readmitted = [], []
        monitor = HealthMonitor(
            [WorkerSpec("w", "http://unused")], lambda spec: None,
            eject_threshold=2, readmit_after=10.0, clock=clock,
            on_eject=ejected.append, on_readmit=readmitted.append,
        )
        monitor.record_send("w", False)
        assert ejected == []
        monitor.record_send("w", False)
        assert ejected == ["w"]
        clock.advance(10.0)
        monitor.probe_all()  # the always-ok probe readmits
        assert readmitted == ["w"]
        assert monitor.states() == {"w": WORKER_HEALTHY}

    def test_one_success_clears_the_suspect_count(self):
        monitor = HealthMonitor(
            [WorkerSpec("w", "http://unused")], lambda spec: None,
            eject_threshold=2, readmit_after=10.0, clock=FakeClock(),
        )
        monitor.record_send("w", False)
        assert monitor.state("w") == WORKER_SUSPECT
        monitor.record_send("w", True)
        assert monitor.state("w") == WORKER_HEALTHY
        # The count reset: one more failure is suspect again, not an
        # ejection — only *consecutive* failures eject.
        monitor.record_send("w", False)
        assert monitor.state("w") == WORKER_SUSPECT
        assert monitor.ejections == 0

    def test_state_changes_emit_events_and_set_the_gauge(self):
        hub = TelemetryHub(HubConfig())
        previous = obs.set_hub(hub)
        try:
            clock = FakeClock()
            ok = {"w": False}
            monitor = HealthMonitor(
                [WorkerSpec("w", "http://unused")], self._flaky_probe(ok),
                eject_threshold=2, readmit_after=10.0, clock=clock,
            )
            monitor.probe_all()
            monitor.probe_all()
            clock.advance(10.0)
            ok["w"] = True
            monitor.probe_all()
        finally:
            obs.set_hub(previous)
        events = hub.tail(kind="fleet.worker")
        assert [e.attrs["state"] for e in events] == [
            WORKER_SUSPECT, WORKER_EJECTED, WORKER_HEALTHY,
        ]
        assert [e.attrs["readmitted"] for e in events] == [
            False, False, True,
        ]
        assert events[1].attrs["previous"] == WORKER_SUSPECT
        assert events[1].attrs["reason"].startswith("probe:")
        gauge = obs.get_registry().gauge("repro_fleet_worker_state")
        assert gauge.value(worker="w") == WORKER_STATE_CODES[WORKER_HEALTHY]

    def test_probe_fault_site_kills_probes_deterministically(self):
        # The probe callable itself always succeeds; only the armed
        # `fleet.probe` site explains the ejection.
        plan = FaultPlan([
            FaultRule(site="fleet.probe", action="raise", times=None),
        ], seed=3)
        monitor = HealthMonitor(
            [WorkerSpec("w", "http://unused")], lambda spec: None,
            eject_threshold=2, readmit_after=10.0, clock=FakeClock(),
        )
        with faults.injected(plan):
            monitor.probe_all()
            monitor.probe_all()
        assert monitor.state("w") == WORKER_EJECTED

    def test_rejects_bad_probe_parameters(self):
        with pytest.raises(ValueError, match="probe_interval"):
            HealthMonitor([WorkerSpec("w", "http://x")], lambda s: None,
                          probe_interval=0.0)
        with pytest.raises(ValueError, match="probe_jitter"):
            HealthMonitor([WorkerSpec("w", "http://x")], lambda s: None,
                          probe_jitter=1.0)

    def test_state_codes_are_distinct(self):
        assert set(WORKER_STATE_CODES) == {
            WORKER_HEALTHY, WORKER_SUSPECT, WORKER_PROBING, WORKER_EJECTED,
        }
        assert len(set(WORKER_STATE_CODES.values())) == 4


# ---------------------------------------------------------------------------
# Self-healing fleet: ejection, requeue, brownout, readmission end to end
# ---------------------------------------------------------------------------


class TestSelfHealingFleet:
    def test_dead_worker_is_ejected_and_jobs_land_live(self, stub):
        # Passive send failures alone must eject the dead worker
        # (probes are parked on a 30s interval), after which every
        # job completes on the live peer.
        dispatcher = FleetDispatcher(
            [WorkerSpec("live", stub.url, capacity=2),
             WorkerSpec("dead", _dead_url(), capacity=2)],
            retry=_fast_retry(attempts=10), poll_interval=0.01,
            eject_threshold=1, probe_interval=30.0, readmit_after=60.0,
        )
        try:
            futures = [
                dispatcher.submit(Job("/v1/embed", {"n": n}))
                for n in range(6)
            ]
            results = [f.result(timeout=15) for f in futures]
            assert sorted(r["echo"]["n"] for r in results) == list(range(6))
            assert _wait_for(
                lambda: dispatcher.stats()["workers"]["dead"]
                == WORKER_EJECTED
            )
            stats = dispatcher.stats()
            assert stats["workers"]["live"] == WORKER_HEALTHY
            assert stats["ejections"] >= 1
            assert stats["completed"] == 6
        finally:
            dispatcher.close()

    def test_brownout_fast_fails_new_submissions(self):
        dispatcher = FleetDispatcher(
            [WorkerSpec("dead", _dead_url(), capacity=1)],
            retry=_fast_retry(attempts=10), poll_interval=0.01,
            eject_threshold=2, probe_interval=0.05, readmit_after=60.0,
        )
        parked = dispatcher.submit(Job("/v1/embed", {"n": 0}))
        assert _wait_for(
            lambda: dispatcher.stats()["workers"]["dead"] == WORKER_EJECTED
        )
        with pytest.raises(DispatchOverload, match="brownout") as excinfo:
            dispatcher.submit(Job("/v1/embed", {"n": 1})).result(timeout=5)
        assert excinfo.value.retry_after > 0
        assert dispatcher.stats()["brownouts"] == 1
        # The job already queued rides out the brownout parked; close
        # fails it like any other abandoned work.
        dispatcher.close()
        with pytest.raises(DispatchOverload, match="closed"):
            parked.result(timeout=5)

    def test_recovered_worker_is_readmitted(self, stub):
        stub.healthy = False
        dispatcher = FleetDispatcher(
            [WorkerSpec("alpha", stub.url, capacity=2)],
            retry=_fast_retry(), poll_interval=0.01,
            eject_threshold=2, probe_interval=0.05, readmit_after=0.2,
        )
        try:
            assert _wait_for(
                lambda: dispatcher.stats()["workers"]["alpha"]
                == WORKER_EJECTED
            )
            with pytest.raises(DispatchOverload, match="brownout"):
                dispatcher.submit(
                    Job("/v1/embed", {"n": 0})
                ).result(timeout=5)
            stub.healthy = True
            assert _wait_for(
                lambda: dispatcher.stats()["workers"]["alpha"]
                == WORKER_HEALTHY
            )
            assert dispatcher.stats()["readmissions"] == 1
            doc = dispatcher.submit(
                Job("/v1/embed", {"n": 1})
            ).result(timeout=10)
            assert doc["echo"] == {"n": 1}
        finally:
            dispatcher.close()

    def test_ejection_requeues_in_flight_exactly_once(self):
        # Jobs stuck on a gated worker must be re-planned onto the
        # live peer when the gated worker is ejected — and when the
        # stragglers finally come back, exactly-once claiming keeps
        # the books straight: one success callback per job, no
        # double-counted completions.
        stub_a, stub_b = StubWorker(), StubWorker()
        stub_a.gate = threading.Event()
        counts = collections.Counter()
        dispatcher = FleetDispatcher(
            [WorkerSpec("a", stub_a.url, capacity=2),
             WorkerSpec("b", stub_b.url, capacity=2)],
            retry=_fast_retry(attempts=6), poll_interval=0.01,
            eject_threshold=2, probe_interval=0.05, readmit_after=60.0,
        )
        try:
            futures = [
                dispatcher.submit(Job(
                    "/v1/embed", {"n": n},
                    on_success=lambda job, doc: counts.update([job.job_id]),
                ))
                for n in range(4)
            ]
            # Two jobs land on each worker; a's two hang on the gate.
            assert _wait_for(
                lambda: dispatcher.stats()["in_flight"]["a"] == 2
            )
            stub_a.healthy = False  # probes now fail; a gets ejected
            assert _wait_for(
                lambda: dispatcher.stats()["workers"]["a"] == WORKER_EJECTED
            )
            results = [f.result(timeout=15) for f in futures]
            assert sorted(r["echo"]["n"] for r in results) == [0, 1, 2, 3]
            stats = dispatcher.stats()
            assert stats["requeues"] >= 2
            assert stats["ejections"] == 1
            # Release the stragglers; their late 200s are superseded
            # and must not double-resolve or double-count anything.
            stub_a.gate.set()
            assert _wait_for(
                lambda: dispatcher.stats()["in_flight"]["a"] == 0
            )
            stats = dispatcher.stats()
            assert stats["completed"] == 4
            assert stats["errors"] == 0
            assert len(counts) == 4
            assert set(counts.values()) == {1}
        finally:
            stub_a.gate.set()
            dispatcher.close()
            stub_a.close()
            stub_b.close()


# ---------------------------------------------------------------------------
# Shed and close invariants, property-tested against a model
# ---------------------------------------------------------------------------


class _BlockingClient:
    """Stands in for ServiceClient: every send parks until released,
    so the pending queue is fully test-controlled."""

    def __init__(self, release):
        self._release = release

    def request_ex(self, method, path, payload=None):
        self._release.wait(timeout=30.0)
        return 200, {"ok": True}, None


def _shed_model(priorities, max_pending):
    """Reference model of `_shed_one`: the victim is the lowest
    priority, newest submission among equals (FIFO under shed)."""
    pending = []  # (neg_priority, order) entries still queued
    shed = set()
    for order, priority in enumerate(priorities):
        entry = (-priority, order)
        if len(pending) >= max_pending:
            victim = max(pending + [entry])
            if victim != entry:
                pending.remove(victim)
                pending.append(entry)
            shed.add(victim[1])
        else:
            pending.append(entry)
    return shed


class TestShedProperties:
    @given(priorities=st.lists(st.integers(0, 3), max_size=10))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_shed_matches_the_model_and_close_fails_the_rest(
        self, priorities
    ):
        max_pending = 3
        release = threading.Event()
        errors = collections.Counter()
        dispatcher = FleetDispatcher(
            [WorkerSpec("w", "http://unused", capacity=1)],
            retry=_fast_retry(), poll_interval=0.01,
            max_pending=max_pending, eject=False,
            client_factory=lambda spec: _BlockingClient(release),
        )
        try:
            # Occupy the only slot so everything after stays pending.
            plug = dispatcher.submit(Job("/v1/recognize", {"plug": True}))
            assert _wait_for(
                lambda: dispatcher.stats()["in_flight"]["w"] == 1
            )
            futures = [
                dispatcher.submit(Job(
                    "/v1/embed", {"n": order}, priority=priority,
                    on_error=lambda job, exc: errors.update(
                        [job.payload["n"]]
                    ),
                ))
                for order, priority in enumerate(priorities)
            ]
            expected_shed = _shed_model(priorities, max_pending)
            for order, future in enumerate(futures):
                if order in expected_shed:
                    with pytest.raises(DispatchOverload, match="saturated"):
                        future.result(timeout=5)
                else:
                    assert not future.done()
            assert dispatcher.stats()["shed"] == len(expected_shed)
            # Unblock the plug just before close so the pool can wind
            # down; _closed is already set, so nothing pending gets
            # re-assigned in the gap.
            threading.Timer(0.1, release.set).start()
            dispatcher.close()
            assert plug.result(timeout=10) == {"ok": True}
            for order, future in enumerate(futures):
                if order not in expected_shed:
                    with pytest.raises(DispatchOverload, match="closed"):
                        future.result(timeout=5)
            # Every non-plug job failed exactly once — shed and close
            # both resolve through the same exactly-once claim.
            assert len(errors) == len(priorities)
            assert not errors or set(errors.values()) == {1}
        finally:
            release.set()
            dispatcher.close()


# ---------------------------------------------------------------------------
# Fleet files and specs
# ---------------------------------------------------------------------------


class TestWorkerSpecs:
    def test_load_workers_roundtrip(self, tmp_path):
        path = tmp_path / "workers.json"
        path.write_text(json.dumps({"workers": [
            {"name": "alpha", "url": "http://127.0.0.1:8101", "capacity": 4},
            {"name": "beta", "url": "http://127.0.0.1:8102"},
        ]}))
        specs = load_workers(str(path))
        assert specs == [
            WorkerSpec("alpha", "http://127.0.0.1:8101", 4),
            WorkerSpec("beta", "http://127.0.0.1:8102", 2),
        ]

    @pytest.mark.parametrize("doc,message", [
        ({}, "non-empty 'workers'"),
        ({"workers": []}, "non-empty 'workers'"),
        ({"workers": [{"url": "http://x"}]}, "non-empty 'name'"),
        ({"workers": [{"name": "a"}]}, "needs a 'url'"),
        ({"workers": [{"name": "a", "url": "http://x", "capacity": 0}]},
         "positive int"),
        ({"workers": [{"name": "a", "url": "http://x"},
                      {"name": "a", "url": "http://y"}]}, "duplicate"),
    ])
    def test_load_workers_rejects_bad_fleets(self, tmp_path, doc, message):
        path = tmp_path / "workers.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match=message):
            load_workers(str(path))

    def test_route_priority_defaults(self):
        assert Job("/v1/recognize", {}).priority == 2
        assert Job("/v1/embed", {}).priority == 1
        assert Job("/v1/other", {}).priority == 0
        assert Job("/v1/embed", {}, priority=9).priority == 9

    def test_fleet_needs_a_worker(self):
        with pytest.raises(ValueError, match="at least one worker"):
            FleetDispatcher([])


# ---------------------------------------------------------------------------
# ServiceClient: the Retry-After surfacing the dispatcher depends on
# ---------------------------------------------------------------------------


class TestServiceClientRetryAfter:
    def test_request_ex_returns_the_final_retry_after(self, stub):
        stub.scripted.append((503, {"error": "draining"},
                              {"Retry-After": "1.5"}))
        client = ServiceClient(stub.url, retry=RetryPolicy(max_attempts=1))
        status, doc, retry_after = client.request_ex(
            "POST", "/v1/embed", {"n": 0}
        )
        assert status == 503
        assert doc["error"] == "draining"
        assert retry_after == 1.5

    def test_embed_error_carries_retry_after(self, stub):
        stub.scripted.append((503, {"error": "draining"},
                              {"Retry-After": "2"}))
        client = ServiceClient(stub.url, retry=RetryPolicy(max_attempts=1))
        with pytest.raises(ServiceError) as excinfo:
            client.embed("a" * 64, "c0", 1)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == 2.0

    def test_unparseable_retry_after_is_none(self, stub):
        stub.scripted.append((503, {"error": "draining"},
                              {"Retry-After": "soon"}))
        client = ServiceClient(stub.url, retry=RetryPolicy(max_attempts=1))
        _, _, retry_after = client.request_ex("POST", "/v1/embed", {})
        assert retry_after is None

    def test_internal_retries_still_honor_the_header(self, stub):
        stub.scripted.append((503, {"error": "draining"},
                              {"Retry-After": "0.4"}))
        naps = []
        client = ServiceClient(
            stub.url,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                              max_delay=0.001, jitter=0.0),
            sleep=naps.append,
        )
        status, doc, _ = client.request_ex("POST", "/v1/embed", {"n": 1})
        assert status == 200
        assert naps == [0.4]
