"""Differential tests for the precompiled fast-path WVM engine.

The fast engine (`repro.vm.interpreter`) must be observably
indistinguishable from the seed tree-walking engine kept in
`repro.vm._reference`: same outputs, same step counts, same traps
with the same messages, and — crucially for the watermark decoder —
the *same instruction objects* in every branch event. These tests pin
that equivalence, including around the superinstruction fusion that
makes the fast path fast.
"""

import io

import pytest

from repro.vm import (
    Interpreter,
    StepLimitExceeded,
    VMError,
    assemble,
    dump_trace,
    run_module,
)
from repro.vm._reference import run_module_reference
from repro.workloads import (
    CAFFEINEMARK_INPUT,
    JESS_INPUT,
    argc_secret_module,
    caffeinemark_module,
    collatz_module,
    gcd_module,
    jess_module,
)

WORKLOADS = [
    ("gcd", gcd_module, [252, 105]),
    ("argc", argc_secret_module, [5]),
    ("collatz", collatz_module, [27]),
    ("caffeinemark", caffeinemark_module, CAFFEINEMARK_INPUT),
    ("jess", jess_module, JESS_INPUT),
]


def _dump_bytes(trace, module):
    buf = io.StringIO()
    dump_trace(trace, module, buf)
    return buf.getvalue()


def _assert_equivalent(module, inputs, mode):
    ref = run_module_reference(module, inputs, trace_mode=mode)
    fast = run_module(module, inputs, trace_mode=mode)
    assert fast.output == ref.output
    assert fast.steps == ref.steps
    assert fast.halted == ref.halted
    if mode is None:
        assert fast.trace is None and ref.trace is None
        return
    assert len(fast.trace.branches) == len(ref.trace.branches)
    for a, b in zip(fast.trace.branches, ref.trace.branches):
        # Object identity, not equality: the decoder keys on id().
        assert a.branch is b.branch
        assert a.follower is b.follower
        assert a.taken == b.taken
    if mode == "full":
        assert fast.trace.points == ref.trace.points
    assert _dump_bytes(fast.trace, module) == _dump_bytes(ref.trace, module)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize(
        "name,factory,inputs",
        WORKLOADS,
        ids=[w[0] for w in WORKLOADS],
    )
    @pytest.mark.parametrize("mode", [None, "branch", "full"])
    def test_workload_matches_reference(self, name, factory, inputs, mode):
        _assert_equivalent(factory(), inputs, mode)

    def test_error_messages_match_reference(self):
        cases = [
            # (source, inputs) designed to trap at runtime.
            ("    const 1\n    const 0\n    div\n", ()),
            ("    const 1\n    const 0\n    mod\n", ()),
            ("    const 5\n    aload\n", ()),
            ("    const -1\n    newarray\n", ()),
            ("    add\n", ()),
            ("    input\n", ()),
        ]
        for body, inputs in cases:
            src = (
                ".globals 0\n.entry main\n"
                ".func main params=0 locals=1\n"
                f"{body}    const 0\n    ret\n.end\n"
            )
            module = assemble(src)
            with pytest.raises(VMError) as ref_exc:
                run_module_reference(module, inputs)
            with pytest.raises(VMError) as fast_exc:
                run_module(module, inputs)
            assert str(fast_exc.value) == str(ref_exc.value)


class TestFusionEdgeCases:
    """Superinstruction fusion must never swallow a label (trace site)."""

    def test_branch_into_middle_of_fusable_pair(self):
        # `const 1 / store 0` would fuse, but `mid:` is a branch target
        # between them — the engine must keep the store reachable.
        src = """
.globals 0
.entry main
.func main params=0 locals=2
    const 0
    store 1
    const 1
mid:
    store 0
    load 1
    ifne done
    const 1
    store 1
    load 0
    const 10
    add
    goto mid
done:
    load 0
    print
    const 0
    ret
.end
"""
        module = assemble(src)
        for mode in (None, "branch", "full"):
            _assert_equivalent(module, (), mode)
        assert run_module(module).output == [11]

    def test_label_sites_survive_fusion_in_full_trace(self):
        src = """
.globals 1
.entry main
.func main params=0 locals=2
    const 7
    store 0
loop:
    load 0
    const 1
    sub
    store 0
    load 0
    ifne loop
    const 0
    ret
.end
"""
        module = assemble(src)
        _assert_equivalent(module, (), "full")
        run = run_module(module, trace_mode="full")
        sites = [p.key.site for p in run.trace.points]
        assert sites.count("loop") == 7

    def test_constant_folding_preserves_division_trap(self):
        src = """
.globals 0
.entry main
.func main params=0 locals=0
    const 1
    const 0
    div
    print
    const 0
    ret
.end
"""
        module = assemble(src)
        with pytest.raises(VMError, match="division by zero"):
            run_module(module)

    def test_deep_recursion_overflows_like_reference(self):
        src = """
.globals 0
.entry main
.func main params=0 locals=0
    call spin
    ret
.end
.func spin params=0 locals=0
    call spin
    ret
.end
"""
        module = assemble(src)
        with pytest.raises(VMError, match="call stack overflow"):
            run_module_reference(module)
        with pytest.raises(VMError, match="call stack overflow"):
            run_module(module)


class TestStepLimit:
    INFINITE = """
.globals 0
.entry main
.func main params=0 locals=1
top:
    iinc 0 1
    goto top
.end
"""

    def test_step_limit_raises_clear_error(self):
        module = assemble(self.INFINITE)
        with pytest.raises(StepLimitExceeded) as exc:
            run_module(module, max_steps=1000)
        message = str(exc.value)
        assert "step limit of 1000 exceeded" in message
        assert "main" in message
        assert "max_steps" in message

    def test_step_limit_is_a_vm_error(self):
        # Callers that catch VMError (the attack harness, the prepare
        # pipeline before the dedicated handler) must keep working.
        module = assemble(self.INFINITE)
        with pytest.raises(VMError):
            run_module(module, max_steps=1000)

    def test_step_limit_mid_trace_discards_partial_trace(self):
        module = assemble(self.INFINITE)
        for mode in ("branch", "full"):
            with pytest.raises(StepLimitExceeded):
                run_module(module, trace_mode=mode, max_steps=1000)

    def test_limit_counts_real_instructions_like_reference(self):
        # A bounded loop: both engines must agree on the smallest
        # max_steps that succeeds, even though the fast engine checks
        # the budget once per (possibly fused) dispatch.
        src_done = """
.globals 0
.entry main
.func main params=0 locals=1
top:
    iinc 0 1
    load 0
    const 5
    if_icmplt top
    const 0
    ret
.end
"""
        module = assemble(src_done)
        exact = run_module_reference(module).steps
        assert run_module(module, max_steps=exact).steps == exact
        with pytest.raises(StepLimitExceeded):
            run_module(module, max_steps=exact - 1)
        with pytest.raises(VMError, match="step limit"):
            run_module_reference(module, max_steps=exact - 1)


class TestEngineApi:
    def test_bad_trace_mode_rejected(self):
        module = gcd_module()
        with pytest.raises(ValueError, match="bad trace_mode"):
            run_module(module, trace_mode="everything")

    def test_unknown_callee_raises(self):
        # validate_structure catches a statically missing callee; the
        # runtime path fires when the module mutates after the
        # interpreter was built (functions compile lazily).
        src = """
.globals 0
.entry main
.func main params=0 locals=0
    call helper
    ret
.end
.func helper params=0 locals=0
    const 1
    ret
.end
"""
        module = assemble(src)
        interp = Interpreter(module)
        del module.functions["helper"]
        with pytest.raises(VMError, match="unknown function"):
            interp.run()
