"""Unit and compatibility tests for the watermark codec layer.

Covers spec resolution, the GF(256)/Reed-Solomon primitives, the
sealed-symbol channel, the protocol's junk-window guard, per-codec
embed/recognize round trips, the redundancy planner's codec axis, and
— most load-bearing — the differential pins: sha256 hashes of default
embeds captured *before* the codec refactor, which the GcrtCodec path
must reproduce byte for byte.
"""

import hashlib
import random

import pytest

from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.codec import (
    CodecError,
    DEFAULT_CODEC,
    GcrtCodec,
    HybridCodec,
    ReedSolomonCodec,
    available_codecs,
    resolve_codec,
    validate_recovery,
)
from repro.codec.base import keyed_mac, open_symbol, seal_symbol
from repro.codec.gf256 import (
    RSDecodeError,
    rs_calc_syndromes,
    rs_correct,
    rs_encode,
)
from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.planner import plan_redundancy
from repro.core.recovery import RecoveryResult
from repro.vm import disassemble
from repro.workloads import collatz_module, gcd_module

ALL_SPECS = ["gcrt", "rs-8", "hybrid-4"]


# ---------------------------------------------------------------------------
# Spec resolution
# ---------------------------------------------------------------------------

class TestResolveCodec:
    def test_none_is_default(self):
        assert resolve_codec(None).spec == DEFAULT_CODEC == "gcrt"

    def test_family_defaults_normalize(self):
        assert resolve_codec("rs").spec == "rs-8"
        assert resolve_codec("hybrid").spec == "hybrid-4"
        assert resolve_codec("gcrt").spec == "gcrt"

    def test_parameterized_specs(self):
        assert resolve_codec("rs-16").ec_bytes == 16
        assert resolve_codec("hybrid-8").ec_bytes == 8

    def test_case_and_whitespace_insensitive(self):
        assert resolve_codec(" RS-8 ").spec == "rs-8"

    def test_instance_passthrough(self):
        codec = ReedSolomonCodec(ec_bytes=6)
        assert resolve_codec(codec) is codec

    def test_instances_are_cached(self):
        assert resolve_codec("rs-8") is resolve_codec("rs-8")
        assert resolve_codec("rs") is resolve_codec("rs")

    def test_spec_round_trips(self):
        for spec in ("gcrt", "rs-8", "rs-16", "hybrid-4", "hybrid-8"):
            assert resolve_codec(spec).spec == spec

    def test_available_codecs(self):
        assert available_codecs() == ("gcrt", "rs", "hybrid")

    def test_trailing_dash_falls_back_to_default(self):
        assert resolve_codec("rs-").spec == "rs-8"

    @pytest.mark.parametrize("bad", [
        "base64", "rs-x", "gcrt-4", "rs-1", "hybrid-1", ""
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(CodecError):
            resolve_codec(bad)

    def test_non_string_spec_raises(self):
        with pytest.raises(CodecError):
            resolve_codec(42)


# ---------------------------------------------------------------------------
# GF(256) Reed-Solomon primitives
# ---------------------------------------------------------------------------

class TestReedSolomonPrimitives:
    DATA = list(b"watermark")
    NSYM = 8

    def test_systematic_encode(self):
        word = rs_encode(self.DATA, self.NSYM)
        assert word[:len(self.DATA)] == self.DATA
        assert len(word) == len(self.DATA) + self.NSYM
        assert max(rs_calc_syndromes(word, self.NSYM)) == 0

    def test_clean_word_passes_through(self):
        word = rs_encode(self.DATA, self.NSYM)
        corrected, errata = rs_correct(word, self.NSYM)
        assert corrected == word
        assert errata == []

    def test_corrects_errors_up_to_half_budget(self):
        word = rs_encode(self.DATA, self.NSYM)
        rng = random.Random(1)
        for count in range(1, self.NSYM // 2 + 1):
            damaged = list(word)
            for pos in rng.sample(range(len(word)), count):
                damaged[pos] ^= rng.randint(1, 255)
            corrected, errata = rs_correct(damaged, self.NSYM)
            assert corrected == word
            assert len(errata) == count

    def test_corrects_erasures_up_to_full_budget(self):
        word = rs_encode(self.DATA, self.NSYM)
        rng = random.Random(2)
        erased = rng.sample(range(len(word)), self.NSYM)
        damaged = list(word)
        for pos in erased:
            damaged[pos] = 0
        corrected, _ = rs_correct(damaged, self.NSYM, erase_pos=erased)
        assert corrected == word

    def test_corrects_mixed_errata_at_the_bound(self):
        # 2e + f <= nsym: 2 errors + 4 erasures against an 8-symbol budget.
        word = rs_encode(self.DATA, self.NSYM)
        rng = random.Random(3)
        positions = rng.sample(range(len(word)), 6)
        erased, errored = positions[:4], positions[4:]
        damaged = list(word)
        for pos in erased:
            damaged[pos] = 0
        for pos in errored:
            damaged[pos] ^= rng.randint(1, 255)
        corrected, _ = rs_correct(damaged, self.NSYM, erase_pos=erased)
        assert corrected == word

    def test_too_many_erasures_raise(self):
        word = rs_encode(self.DATA, self.NSYM)
        erased = list(range(self.NSYM + 1))
        damaged = list(word)
        for pos in erased:
            damaged[pos] = 0
        with pytest.raises(RSDecodeError):
            rs_correct(damaged, self.NSYM, erase_pos=erased)

    def test_too_many_errors_raise_or_fail_loudly(self):
        word = rs_encode(self.DATA, self.NSYM)
        rng = random.Random(4)
        damaged = list(word)
        for pos in rng.sample(range(len(word)), self.NSYM):
            damaged[pos] ^= rng.randint(1, 255)
        with pytest.raises(RSDecodeError):
            rs_correct(damaged, self.NSYM)

    def test_oversized_codeword_rejected(self):
        with pytest.raises(ValueError):
            rs_encode([0] * 250, 8)


# ---------------------------------------------------------------------------
# Sealed-symbol channel and keyed MAC
# ---------------------------------------------------------------------------

class TestSealedSymbols:
    CIPHER = WatermarkKey(secret=b"symbols", inputs=[]).cipher()
    TAG = 0x5253

    def test_round_trip(self):
        for pos, sym in [(0, 0), (7, 201), (19, 255)]:
            block = seal_symbol(self.CIPHER, self.TAG, pos, sym)
            assert open_symbol(self.CIPHER, self.TAG, block, 20) == (pos, sym)

    def test_wrong_tag_rejected(self):
        block = seal_symbol(self.CIPHER, self.TAG, 3, 99)
        assert open_symbol(self.CIPHER, 0x4859, block, 20) is None

    def test_out_of_range_position_rejected(self):
        block = seal_symbol(self.CIPHER, self.TAG, 19, 99)
        assert open_symbol(self.CIPHER, self.TAG, block, 19) is None

    def test_junk_blocks_rejected(self):
        rng = random.Random(5)
        hits = sum(
            open_symbol(self.CIPHER, self.TAG, rng.getrandbits(64), 255)
            is not None
            for _ in range(2000)
        )
        assert hits == 0

    def test_layout_bounds_enforced(self):
        with pytest.raises(ValueError):
            seal_symbol(self.CIPHER, self.TAG, 256, 0)
        with pytest.raises(ValueError):
            seal_symbol(self.CIPHER, self.TAG, 0, 256)

    def test_keyed_mac_binds_key_and_data(self):
        other = WatermarkKey(secret=b"other", inputs=[]).cipher()
        mac = keyed_mac(self.CIPHER, b"payload", 4)
        assert len(mac) == 4
        assert mac == keyed_mac(self.CIPHER, b"payload", 4)
        assert mac != keyed_mac(self.CIPHER, b"payloae", 4)
        assert mac != keyed_mac(other, b"payload", 4)


# ---------------------------------------------------------------------------
# Junk-window guard (regression: phantom marks above the bit width)
# ---------------------------------------------------------------------------

class TestValidateRecovery:
    def _result(self, value):
        return RecoveryResult(
            complete=True, value=value, congruence=None, confidence=1.0
        )

    def test_in_range_value_untouched(self):
        result = validate_recovery(self._result(0xBEEF), 16)
        assert result.complete and result.value == 0xBEEF

    def test_out_of_range_value_demoted(self):
        result = validate_recovery(self._result(1 << 16), 16)
        assert not result.complete
        assert result.value is None
        assert result.confidence == 0.0

    def test_demotion_is_idempotent(self):
        result = validate_recovery(self._result(-1), 16)
        assert validate_recovery(result, 16) is result

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_codecs_never_report_out_of_range_marks(self, spec):
        # Regression for the pre-codec bug: the junk-window rejection
        # (value must fit the mark width) lived only in recognize_bits,
        # so direct decode callers could see phantom out-of-range marks.
        # A trace carrying a 17-bit "mark" decoded at width 16 must come
        # back incomplete from every codec, not as a junk value.
        codec = resolve_codec(spec)
        cipher = WatermarkKey(secret=b"junk-guard", inputs=[]).cipher()
        rng = random.Random(6)
        pieces = codec.encode((1 << 16) | 21, 17, 12, cipher, rng)
        bits = []
        for piece in pieces:
            bits.extend(int_to_bits_lsb_first(piece.block, 64))
        result = codec.decode(bits, 16, cipher)
        assert result.value is None or result.value < (1 << 16)


# ---------------------------------------------------------------------------
# Differential pins: default embeds are byte-identical to pre-codec ones
# ---------------------------------------------------------------------------

# sha256 of the disassembled marked module, captured on the commit
# immediately before the codec layer landed. If one of these moves, the
# default path is no longer producing the same programs it used to —
# old artifacts would stop recognizing.
PINNED_EMBEDS = {
    ("collatz", ""): (
        "7b22d44a2c665496a6641a8629d2698f695096f7aff3b2abaa0a8ad94e75c40f"
    ),
    ("collatz", "0xBEEF/3"): (
        "7b7754448b8473ac197f11eeee017537a30ab4797b0747a9f455eafb9799db68"
    ),
    ("gcd", ""): (
        "144456317b7c7a303fe62c72f6e251008b99ea0d9456e60fc573ba5e6f18919c"
    ),
    ("gcd", "0xBEEF/3"): (
        "503151925b3177f34ab6ae104e54570489fae7dc383f39afcf3f7c60b4a802a9"
    ),
}

_PIN_WORKLOADS = {
    "collatz": (collatz_module, [27]),
    "gcd": (gcd_module, [252, 105]),
}


@pytest.mark.parametrize("workload,salt", sorted(PINNED_EMBEDS))
@pytest.mark.parametrize("codec", [None, "gcrt"])
def test_default_embed_matches_pre_codec_pin(workload, salt, codec):
    factory, inputs = _PIN_WORKLOADS[workload]
    key = WatermarkKey(secret=b"codec-pin", inputs=inputs)
    result = embed(
        factory(), 0xBEEF, key,
        pieces=14, watermark_bits=16, rng_salt=salt, codec=codec,
    )
    digest = hashlib.sha256(disassemble(result.module).encode()).hexdigest()
    assert digest == PINNED_EMBEDS[(workload, salt)]
    assert result.codec == "gcrt"


# ---------------------------------------------------------------------------
# Per-codec embed/recognize round trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", ["gcrt", "rs-4", "rs-8", "hybrid-4"])
def test_embed_recognize_round_trip(spec):
    key = WatermarkKey(secret=b"codec-rt", inputs=[252, 105])
    result = embed(
        gcd_module(), 0x51ED, key, watermark_bits=16, codec=spec
    )
    assert result.codec == resolve_codec(spec).spec
    found = recognize(
        result.module, key, watermark_bits=16, codec=spec
    )
    assert found.complete
    assert found.value == 0x51ED
    assert found.codec == resolve_codec(spec).spec


def test_recognize_with_wrong_codec_fails_closed():
    key = WatermarkKey(secret=b"codec-rt", inputs=[252, 105])
    result = embed(
        gcd_module(), 0x51ED, key, watermark_bits=16, codec="rs-8"
    )
    found = recognize(result.module, key, watermark_bits=16, codec="gcrt")
    assert not found.complete


def test_embed_rejects_unknown_codec():
    key = WatermarkKey(secret=b"codec-rt", inputs=[252, 105])
    with pytest.raises(CodecError):
        embed(gcd_module(), 1, key, watermark_bits=16, codec="base64")


# ---------------------------------------------------------------------------
# Codec piece-count and planner models
# ---------------------------------------------------------------------------

class TestCodecModels:
    def test_gcrt_defaults_match_pre_codec_behaviour(self):
        codec = GcrtCodec()
        assert codec.default_piece_count(16) == 4
        assert codec.default_piece_count(64) == 6
        assert codec.min_piece_count(16) == 1

    def test_rs_minimum_is_the_erasure_bound(self):
        codec = ReedSolomonCodec(ec_bytes=8)
        # 16-bit: 2 data + 4 mac + 8 parity = 14 symbols, 8 erasable.
        assert codec.min_piece_count(16) == 6
        assert codec.default_piece_count(16) == 28

    def test_hybrid_budget_split_restores_gcrt_coverage(self):
        codec = HybridCodec(ec_bytes=4)
        gcrt_share, parity_share = codec.split_budget(64, 4)
        assert gcrt_share >= 2  # r - 1 for the 3-moduli 64-bit layout
        assert gcrt_share + parity_share == 4

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_success_probability_monotone_in_pieces(self, spec):
        codec = resolve_codec(spec)
        start = codec.min_piece_count(16)
        probs = [
            codec.success_probability(16, pieces, 0.3)
            for pieces in range(start, start + 12)
        ]
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_plan_redundancy_carries_codec(self, spec):
        plan = plan_redundancy(16, 0.2, codec=spec)
        codec = resolve_codec(spec)
        assert plan.codec == codec.spec
        assert plan.pieces >= codec.min_piece_count(16)
        assert plan.expected_success >= 0.99  # the default target
        assert codec.success_probability(16, plan.pieces, 0.2) == (
            plan.expected_success
        )

    def test_plan_default_codec_unchanged(self):
        assert plan_redundancy(16, 0.2) == plan_redundancy(
            16, 0.2, codec="gcrt"
        )
