"""Fault-injection tests for the hardened artifact store."""

import json
import os
import warnings

import pytest

from repro import faults
from repro.bytecode_wm import WatermarkKey
from repro.cli import main
from repro.faults.injector import FaultPlan, FaultRule
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.pipeline import prepare
from repro.pipeline.prepare import PrepareCache
from repro.serve import ArtifactStore, StoreError
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])
BITS = 16
PIECES = 8


@pytest.fixture(scope="module")
def prepared():
    return prepare(gcd_module(), KEY, BITS, PIECES)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_ambient_plan():
    yield
    faults.clear()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _corrupt_blob(store, digest):
    blob = os.path.join(store.root, "blobs", f"{digest}.pickle")
    data = bytearray(open(blob, "rb").read())
    data[len(data) // 2] ^= 0xFF
    open(blob, "wb").write(bytes(data))


class TestQuarantine:
    def test_corrupt_blob_is_quarantined_not_deleted(self, store, prepared):
        record = store.put(prepared)
        _corrupt_blob(store, record.digest)
        with pytest.raises(StoreError, match="integrity"):
            store.load(record.digest)
        # The record is gone, the evidence is not.
        assert record.digest not in store
        qblob = os.path.join(
            store.root, "quarantine", f"{record.digest}.pickle"
        )
        assert os.path.exists(qblob)
        assert store.verify() == []  # blobs/ is clean again
        records = store.quarantined()
        assert len(records) == 1
        assert records[0].digest == record.digest
        assert "sha256" in records[0].reason
        assert get_registry().counter(
            "repro_store_quarantined_total"
        ).value(reason="sha256 mismatch") == 1

    def test_get_or_prepare_heals_after_quarantine(self, store, prepared):
        record = store.put(prepared)
        _corrupt_blob(store, record.digest)
        healed, hit = store.get_or_prepare(gcd_module(), KEY, BITS, PIECES)
        assert not hit
        assert healed.fingerprint() == record.digest
        assert store.load(record.digest).fingerprint() == record.digest
        # The quarantined evidence from the first failure survives.
        assert len(store.quarantined()) == 1

    def test_unpicklable_blob_reason(self, store, prepared):
        record = store.put(prepared)
        blob = os.path.join(store.root, "blobs", f"{record.digest}.pickle")
        garbage = b"not a pickle at all"
        open(blob, "wb").write(garbage)
        # Forge the manifest sha so the failure lands at unpickling.
        import hashlib
        manifest_path = os.path.join(store.root, "store.json")
        doc = json.load(open(manifest_path))
        for entry in doc["artifacts"]:
            entry["sha256"] = hashlib.sha256(garbage).hexdigest()
        json.dump(doc, open(manifest_path, "w"))
        store.refresh()
        with pytest.raises(StoreError, match="unpickle"):
            store.load(record.digest)
        assert "unpickle" in store.quarantined()[0].reason

    def test_injected_corruption_on_write(self, store, prepared):
        """A byte fault on the blob-write path lands corrupt data on
        disk; the next load quarantines it."""
        plan = FaultPlan(rules=[
            FaultRule(site="store.write.blob", action="corrupt"),
        ])
        with faults.injected(plan):
            record = store.put(prepared)
        with pytest.raises(StoreError, match="integrity"):
            store.load(record.digest)
        assert len(store.quarantined()) == 1

    def test_quarantine_list_cli(self, store, prepared, capsys):
        record = store.put(prepared)
        _corrupt_blob(store, record.digest)
        with pytest.raises(StoreError):
            store.load(record.digest)
        rc = main(["artifact", "quarantine-list", "--store", store.root])
        assert rc == 0
        out = capsys.readouterr()
        assert record.digest[:16] in out.out
        assert "1 quarantined blob(s)" in out.err
        rc = main([
            "artifact", "quarantine-list", "--store", store.root, "--json"
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc[0]["digest"] == record.digest


class TestTornManifest:
    def test_truncated_manifest_rebuilds_from_blobs(self, tmp_path, prepared):
        root = str(tmp_path / "store")
        digest = ArtifactStore(root).put(prepared).digest
        manifest = os.path.join(root, "store.json")
        text = open(manifest).read()
        open(manifest, "w").write(text[: len(text) // 2])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reopened = ArtifactStore(root, create=False)
        assert any("rebuilding" in str(w.message) for w in caught)
        assert digest in reopened
        assert reopened.load(digest).fingerprint() == digest
        assert os.path.exists(manifest + ".corrupt")
        assert get_registry().counter(
            "repro_store_manifest_rebuilds_total"
        ).value() == 1

    def test_rebuild_skips_blobs_that_do_not_verify(self, tmp_path, prepared):
        root = str(tmp_path / "store")
        store = ArtifactStore(root)
        digest = store.put(prepared).digest
        # An orphan that is not even a pickle must not re-enter.
        orphan = os.path.join(root, "blobs", "e" * 64 + ".pickle")
        open(orphan, "wb").write(b"junk")
        manifest = os.path.join(root, "store.json")
        open(manifest, "w").write("{\"version\": 1, \"artifacts\": [")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            reopened = ArtifactStore(root, create=False)
        assert len(reopened) == 1 and digest in reopened

    def test_injected_truncation_on_manifest_write(self, tmp_path, prepared):
        """End to end: a torn manifest *write* (injected truncate)
        followed by a fresh open triggers the rebuild."""
        root = str(tmp_path / "store")
        store = ArtifactStore(root)
        plan = FaultPlan(rules=[
            FaultRule(site="store.write.manifest", action="truncate"),
        ])
        with faults.injected(plan):
            digest = store.put(prepared).digest
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reopened = ArtifactStore(root, create=False)
        assert any("rebuilding" in str(w.message) for w in caught)
        assert digest in reopened


class TestWriteFaults:
    def test_disk_full_on_blob_write_propagates_oserror(
        self, store, prepared
    ):
        plan = FaultPlan(rules=[
            FaultRule(site="store.write.blob", action="disk_full"),
        ])
        with faults.injected(plan), pytest.raises(OSError):
            store.put(prepared)
        assert len(store) == 0

    def test_prepare_cache_degrades_on_store_write_failure(
        self, store, prepared
    ):
        """A full disk costs persistence, never the preparation."""
        cache = PrepareCache(store=store)
        plan = FaultPlan(rules=[
            FaultRule(site="store.write.blob", action="disk_full"),
        ])
        with faults.injected(plan):
            artifact, hit = cache.get_or_prepare(gcd_module(), KEY, BITS)
        assert not hit and artifact is not None
        assert len(store) == 0  # nothing persisted...
        again, hit = cache.get_or_prepare(gcd_module(), KEY, BITS)
        assert hit  # ...but the in-memory tier still serves it

    def test_lockfile_exists_after_manifest_write(self, store, prepared):
        store.put(prepared)
        assert os.path.exists(os.path.join(store.root, "store.lock"))

    def test_concurrent_writers_both_land(self, tmp_path, prepared):
        """Two handles interleaving put/evict keep a parseable
        manifest (the lock serializes rename races)."""
        root = str(tmp_path / "store")
        a = ArtifactStore(root)
        b = ArtifactStore(root)
        other = prepare(gcd_module(), KEY, BITS, pieces=6)
        da = a.put(prepared).digest
        db = b.put(other).digest
        fresh = ArtifactStore(root, create=False)
        assert db in fresh
        # a's handle predates b's write; its view refreshes cleanly.
        a.refresh()
        assert da in a or da not in a  # no exception is the contract
        assert json.load(open(os.path.join(root, "store.json")))
