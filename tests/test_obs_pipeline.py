"""Integration tests: observability threaded through the embedding
pipeline, the batch executor and the CLI."""

import json
import os
import pickle

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import (
    BatchReport,
    CopySpec,
    StageTimings,
    prepare,
    run_batch,
    sequential_specs,
)
from repro.vm import disassemble
from repro.workloads import collatz_module, gcd_module

from repro.bytecode_wm import WatermarkKey

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])
BITS = 16

WEE = ("fn gcd(a, b) { while (a % b != 0) { var t = a % b; a = b; "
       "b = t; } return b; }\n"
       "fn main() { print(gcd(input(), input())); return 0; }\n")

NATIVE_APP = """
fn work(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }
    }
    return acc;
}
fn main() { var n = input(); print(work(n)); return 0; }
"""


@pytest.fixture(autouse=True)
def _isolated_ambient():
    previous = obs.set_registry(MetricsRegistry())
    obs.disable_tracing()
    yield
    obs.set_registry(previous)
    obs.disable_tracing()


@pytest.fixture(scope="module")
def prepared():
    return prepare(gcd_module(), KEY, BITS)


class TestStageTimings:
    def test_reentrant_measure_regression(self):
        """StageTimings.measure used to accumulate on every exit of a
        re-entered stage, double-counting the inner interval."""
        timings = StageTimings()
        with timings.measure("embed"):
            with timings.measure("embed"):
                with timings.measure("embed"):
                    pass
        wall = StageTimings()
        with wall.measure("w"):
            with timings.measure("embed2"):
                with timings.measure("embed2"):
                    pass
        assert timings.stages["embed2"] <= wall.stages["w"]

    def test_feeds_ambient_stage_histogram(self):
        timings = StageTimings()
        with timings.measure("trace"):
            pass
        h = obs.get_registry().histogram("repro_stage_seconds")
        assert h.count(stage="trace") == 1

    def test_pickle_round_trip_keeps_stage_totals(self):
        timings = StageTimings()
        timings.record("trace", 0.5)
        clone = pickle.loads(pickle.dumps(timings))
        assert clone.stages == {"trace": 0.5}
        # A restored object measures and feeds the (current) ambient
        # registry again.
        with clone.measure("embed"):
            pass
        assert "embed" in clone.stages


class TestPreparePickleCompat:
    def test_prepared_program_pickles(self, prepared):
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.watermark_bits == prepared.watermark_bits
        assert clone.dispatch_counts == prepared.dispatch_counts

    def test_old_state_without_dispatch_counts(self, prepared):
        state = prepared.__dict__.copy()
        state.pop("dispatch_counts")
        clone = object.__new__(type(prepared))
        clone.__setstate__(state)
        assert clone.dispatch_counts is None


class TestBatchObservability:
    def test_report_json_round_trip(self, prepared, tmp_path):
        report = run_batch(
            prepared, sequential_specs(3, start_watermark=70),
            workers=1, profile=True,
        )
        path = str(tmp_path / "report.json")
        report.write(path)
        rebuilt = BatchReport.read(path)
        assert rebuilt.to_dict() == report.to_dict()
        assert [c.copy_id for c in rebuilt.copies] == \
            [c.copy_id for c in report.copies]
        assert rebuilt.copies[0].traceback is None
        assert rebuilt.dispatch_profile is not None
        assert rebuilt.dispatch_profile.to_dict() == \
            report.dispatch_profile.to_dict()

    def test_no_profile_no_dispatch_key(self, prepared):
        report = run_batch(
            prepared, sequential_specs(2, start_watermark=40), workers=1
        )
        assert report.dispatch_profile is None
        assert "dispatch_profile" not in report.to_dict()

    def test_failed_copy_carries_traceback(self, prepared):
        report = run_batch(
            prepared, [CopySpec("wide", 1 << BITS)], workers=1
        )
        bad = report.copies[0]
        assert not bad.ok
        assert "EmbeddingError" in bad.traceback
        assert "Traceback" in bad.traceback
        doc = report.to_dict()
        assert "EmbeddingError" in doc["copies"][0]["traceback"]
        assert BatchReport.from_dict(doc).copies[0].traceback == \
            bad.traceback

    @pytest.mark.parametrize("workers", [1, 2])
    def test_span_tree_covers_batch(self, prepared, workers):
        tracer = obs.enable_tracing()
        report = run_batch(
            prepared, sequential_specs(4, start_watermark=80),
            workers=workers,
        )
        assert report.all_ok
        spans = tracer.drain()
        by_name = {}
        for sp in spans:
            by_name.setdefault(sp.name, []).append(sp)
        (batch,) = by_name["batch"]
        assert batch.attributes["copies"] == 4
        copies = by_name["copy"]
        assert len(copies) == 4
        for sp in copies:
            assert sp.parent_id == batch.span_id
            assert sp.trace_id == batch.trace_id
        checks = by_name["copy.self_check"]
        assert len(checks) == 4
        copy_ids = {sp.span_id for sp in copies}
        assert all(sp.parent_id in copy_ids for sp in checks)

    def test_spans_do_not_leak_into_report_json(self, prepared):
        obs.enable_tracing()
        report = run_batch(
            prepared, sequential_specs(2, start_watermark=90), workers=1
        )
        doc = report.to_dict()
        assert "spans" not in doc["copies"][0]
        assert "dispatch_counts" not in doc["copies"][0]

    def test_untraced_batch_produces_no_spans(self, prepared):
        report = run_batch(
            prepared, sequential_specs(2, start_watermark=95), workers=1
        )
        assert report.all_ok
        assert obs.get_tracer().drain() == []

    def test_profile_merges_prepare_and_self_checks(self):
        module = gcd_module()
        prep = prepare(module, KEY, BITS, profile=True)
        assert prep.dispatch_counts is not None
        report = run_batch(
            prep, sequential_specs(3, start_watermark=20),
            workers=1, profile=True,
        )
        profile = report.dispatch_profile
        # One prepare trace plus three self-check runs.
        assert profile.runs == 4
        assert profile.total_steps > 0

    def test_prepare_emits_stage_spans(self):
        tracer = obs.enable_tracing()
        prepare(gcd_module(), KEY, BITS)
        names = [sp.name for sp in tracer.drain()]
        assert "prepare" in names
        for stage in ("prepare.trace", "prepare.cfg",
                      "prepare.placement", "prepare.plan"):
            assert stage in names


class TestObservabilityCli:
    def _write_job(self, tmp_path, count=3):
        (tmp_path / "app.wasm").write_text(disassemble(collatz_module()))
        (tmp_path / "job.json").write_text(json.dumps({
            "module": "app.wasm",
            "secret": "vendor",
            "inputs": [27],
            "bits": 16,
            "pieces": 8,
            "copies": {"count": count, "start_watermark": 501},
        }))
        return str(tmp_path / "job.json")

    def test_batch_embed_obs_out_and_profile(self, tmp_path, capsys):
        job = self._write_job(tmp_path)
        outdir = str(tmp_path / "dist")
        obs_path = str(tmp_path / "obs.jsonl")
        rc = cli_main([
            "batch-embed", job, "-o", outdir, "--workers", "2",
            "--obs-out", obs_path, "--profile",
        ])
        assert rc == 0
        docs = [json.loads(line)
                for line in open(obs_path).read().splitlines()]
        spans = [d for d in docs if d["kind"] == "span"]
        metrics = [d for d in docs if d["kind"] == "metric"]
        assert spans and metrics
        names = [d["name"] for d in spans]
        assert names.count("copy") == 3
        assert "batch" in names and "prepare" in names
        (batch,) = [d for d in spans if d["name"] == "batch"]
        for d in spans:
            if d["name"] == "copy":
                assert d["parent_id"] == batch["span_id"]
        # Prometheus sibling file is scrape-shaped.
        prom = open(str(tmp_path / "obs.prom")).read()
        assert "# TYPE repro_stage_seconds histogram" in prom
        assert 'le="+Inf"' in prom
        # Dispatch profile artifact agrees with the report.
        profile = json.loads(
            open(os.path.join(outdir, "profile.json")).read()
        )
        report = json.loads(
            open(os.path.join(outdir, "report.json")).read()
        )
        assert profile == report["dispatch_profile"]
        assert profile["total_steps"] > 0
        assert "dispatch profile:" in capsys.readouterr().err

    def test_batch_embed_without_flags_emits_nothing(self, tmp_path):
        job = self._write_job(tmp_path, count=2)
        outdir = str(tmp_path / "dist")
        rc = cli_main(["batch-embed", job, "-o", outdir])
        assert rc == 0
        assert not os.path.exists(str(tmp_path / "obs.jsonl"))
        assert not os.path.exists(os.path.join(outdir, "profile.json"))
        report = json.loads(
            open(os.path.join(outdir, "report.json")).read()
        )
        assert "dispatch_profile" not in report

    def test_recognize_diagnose(self, tmp_path, capsys):
        src = tmp_path / "app.wee"
        src.write_text(WEE)
        asm = tmp_path / "app.wasm"
        assert cli_main(["compile", str(src), "-o", str(asm)]) == 0
        marked = tmp_path / "marked.wasm"
        rc = cli_main([
            "embed", str(asm), "-o", str(marked),
            "--watermark", "0xBEEF", "--bits", "16",
            "--secret", "vendor", "--inputs", "25,10", "--pieces", "8",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main([
            "recognize", str(marked), "--diagnose",
            "--bits", "16", "--secret", "vendor", "--inputs", "25,10",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "0xbeef"
        assert "recovered" in captured.err
        assert "window" in captured.err

    def test_recognize_diagnose_on_unmarked(self, tmp_path, capsys):
        src = tmp_path / "app.wee"
        src.write_text(WEE)
        asm = tmp_path / "app.wasm"
        assert cli_main(["compile", str(src), "-o", str(asm)]) == 0
        capsys.readouterr()
        rc = cli_main([
            "recognize", str(asm), "--diagnose",
            "--bits", "16", "--secret", "vendor", "--inputs", "25,10",
        ])
        assert rc == 1
        assert "NOT recovered" in capsys.readouterr().err

    def test_nextract_diagnose(self, tmp_path, capsys):
        src = tmp_path / "app.wee"
        src.write_text(NATIVE_APP)
        img = tmp_path / "app.n32"
        assert cli_main(["ncompile", str(src), "-o", str(img)]) == 0
        marked = tmp_path / "marked.n32"
        rc = cli_main([
            "nembed", str(img), "-o", str(marked),
            "--watermark", "0xFACE", "--bits", "16", "--inputs", "40",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main([
            "nextract", str(marked), "--diagnose",
            "--bits", "16", "--inputs", "40",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "0xface"
        assert "linked runs" in captured.err
