"""Tests for the asyncio serving daemon (`repro.serve.daemon`).

The end-to-end tests drive a real `ServerThread` over real sockets
with `http.client`; the failure-path tests (429 backpressure, 504
timeout, worker-death retry) make the nondeterministic deterministic
by monkeypatching the worker entry points the daemon dispatches to.
"""

import http.client
import json
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro import obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import prepare
from repro.pipeline.metrics import CopyResult
from repro.serve import ArtifactStore, ServerConfig, ServerThread, StoreError
from repro.serve import daemon as daemon_module
from repro.vm import disassemble
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"serve-key", inputs=[25, 10])
BITS = 16
PIECES = 8


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous = obs.set_registry(MetricsRegistry())
    obs.disable_tracing()
    yield
    obs.set_registry(previous)
    obs.disable_tracing()


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("serve") / "store")
    store = ArtifactStore(root)
    store.put(prepare(gcd_module(), KEY, BITS, PIECES), label="gcd")
    return root


@pytest.fixture(scope="module")
def digest(store_root):
    return ArtifactStore(store_root, create=False).records()[0].digest


def request(server, method, path, doc=None):
    """One HTTP exchange; returns (status, parsed body or text)."""
    conn = http.client.HTTPConnection(
        server.service.config.host, server.service.port, timeout=30
    )
    try:
        body = None if doc is None else json.dumps(doc)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        payload = response.read().decode()
        if response.getheader("Content-Type", "").startswith(
            "application/json"
        ):
            return response.status, json.loads(payload), response
        return response.status, payload, response
    finally:
        conn.close()


def thread_config(store_root, **overrides):
    defaults = dict(
        store_root=store_root, port=0, executor="thread", workers=2
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestEndToEnd:
    def test_embed_recognize_round_trip(self, store_root, digest):
        with ServerThread(thread_config(store_root)) as server:
            status, health, _ = request(server, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["artifacts"] == 1

            status, embed, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest[:12],   # prefixes resolve
                "copy_id": "acme",
                "watermark": "0x1234",
                "seed": 7,
            })
            assert status == 200
            assert embed["verified"] is True
            assert embed["recognized"] == 0x1234
            assert embed["artifact"] == digest

            status, rec, _ = request(server, "POST", "/v1/recognize", {
                "artifact": digest, "module": embed["module"],
            })
            assert status == 200
            assert rec["complete"] is True
            assert rec["value"] == 0x1234

    def test_concurrent_requests_all_succeed(self, store_root, digest):
        config = thread_config(store_root, workers=2, queue_depth=8)
        outcomes = []
        lock = threading.Lock()
        with ServerThread(config) as server:
            def mint(index):
                status, doc, _ = request(server, "POST", "/v1/embed", {
                    "artifact": digest,
                    "copy_id": f"copy-{index}",
                    "watermark": index + 1,
                    "seed": index,
                })
                with lock:
                    outcomes.append((status, doc.get("recognized")))
            threads = [
                threading.Thread(target=mint, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(outcomes) == [
            (200, 1), (200, 2), (200, 3), (200, 4)
        ]

    def test_unmarked_module_recognize_is_422_with_funnel(
        self, store_root, digest
    ):
        with ServerThread(thread_config(store_root)) as server:
            status, doc, _ = request(server, "POST", "/v1/recognize", {
                "artifact": digest,
                "module": disassemble(gcd_module()),
            })
            assert status == 422
            assert doc["complete"] is False
            assert doc["report"]["complete"] is False
            assert doc["report"]["moduli_missing"]  # funnel travels along

    def test_metrics_and_artifacts_endpoints(self, store_root, digest):
        with ServerThread(thread_config(store_root)) as server:
            request(server, "GET", "/healthz")
            status, listing, _ = request(server, "GET", "/v1/artifacts")
            assert status == 200
            assert [a["digest"] for a in listing["artifacts"]] == [digest]

            status, text, response = request(server, "GET", "/metrics")
            assert status == 200
            assert response.getheader("Content-Type").startswith("text/plain")
            assert "repro_http_requests_total" in text
            assert 'repro_http_request_seconds_bucket{' in text
            assert 'route="/healthz"' in text

    def test_process_pool_end_to_end(self, store_root, digest):
        config = ServerConfig(
            store_root=store_root, port=0, executor="process", workers=1
        )
        with ServerThread(config) as server:
            status, embed, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "proc",
                "watermark": 0x0CAF, "seed": 1,
            })
            assert status == 200
            assert embed["verified"] is True
            status, rec, _ = request(server, "POST", "/v1/recognize", {
                "artifact": digest, "module": embed["module"],
            })
            assert (status, rec["value"]) == (200, 0x0CAF)


class TestValidation:
    def test_error_shapes(self, store_root, digest):
        with ServerThread(thread_config(store_root)) as server:
            cases = [
                ("GET", "/nope", None, 404),
                ("DELETE", "/healthz", None, 405),
                ("POST", "/v1/embed", {"copy_id": "x"}, 400),  # no artifact
                ("POST", "/v1/embed",
                 {"artifact": "0" * 64, "copy_id": "x", "watermark": 1},
                 404),  # unknown digest
                ("POST", "/v1/embed",
                 {"artifact": digest, "copy_id": "x", "watermark": "zz"},
                 400),
                ("POST", "/v1/embed",
                 {"artifact": digest, "copy_id": "x",
                  "watermark": 1 << BITS}, 400),  # too wide for artifact
                ("POST", "/v1/recognize", {"artifact": digest}, 400),
            ]
            for method, path, doc, expected in cases:
                status, body, _ = request(server, method, path, doc)
                assert status == expected, (method, path, body)
                assert "error" in body

    def test_malformed_json_body(self, store_root):
        with ServerThread(thread_config(store_root)) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.service.port, timeout=10
            )
            try:
                conn.request("POST", "/v1/embed", body="{not json")
                response = conn.getresponse()
                assert response.status == 400
            finally:
                conn.close()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ServerConfig(store_root="s", workers=0)
        with pytest.raises(ValueError, match="executor"):
            ServerConfig(store_root="s", executor="fibers")
        with pytest.raises(ValueError, match="timeout"):
            ServerConfig(store_root="s", request_timeout=0)

    def test_missing_store_fails_startup(self, tmp_path):
        config = ServerConfig(store_root=str(tmp_path / "void"))
        with pytest.raises(StoreError, match="no artifact store"):
            ServerThread(config)


def fake_result(spec_args):
    """A verified CopyResult shaped like service_embed_copy's output."""
    _store_root, _digest, spec = spec_args[:3]
    return CopyResult(
        copy_id=spec.copy_id, watermark=spec.watermark, seed=spec.seed,
        ok=True, checked=True, self_check=True, output_ok=True,
        recognized=spec.watermark, text="stub", piece_count=1,
    )


class TestBackpressure:
    def test_queue_full_gives_429_with_retry_after(
        self, store_root, digest, monkeypatch
    ):
        release = threading.Event()
        entered = threading.Event()

        def blocking_embed(*args):
            entered.set()
            assert release.wait(timeout=30)
            return fake_result(args)

        monkeypatch.setattr(
            daemon_module, "service_embed_copy", blocking_embed
        )
        config = thread_config(store_root, workers=1, queue_depth=0)
        with ServerThread(config) as server:
            body = {
                "artifact": digest, "copy_id": "slow", "watermark": 1,
            }
            first = {}

            def go():
                status, doc, _ = request(server, "POST", "/v1/embed", body)
                first["status"] = status

            t = threading.Thread(target=go)
            t.start()
            assert entered.wait(timeout=10)  # worker slot now occupied

            status, doc, response = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "shed", "watermark": 2,
            })
            assert status == 429
            assert response.getheader("Retry-After") == "1"
            assert "queue full" in doc["error"]

            release.set()
            t.join(timeout=30)
            assert first["status"] == 200

            _, text, _ = request(server, "GET", "/metrics")
            assert 'route="rejected"' in text

    def test_slow_job_gives_504(self, store_root, digest, monkeypatch):
        def slow_embed(*args):
            time.sleep(0.5)
            return fake_result(args)

        monkeypatch.setattr(daemon_module, "service_embed_copy", slow_embed)
        config = thread_config(
            store_root, workers=1, request_timeout=0.05
        )
        with ServerThread(config) as server:
            status, doc, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "late", "watermark": 1,
            })
            assert status == 504
            assert "budget" in doc["error"]


class TestWorkerDeathRetry:
    def test_broken_pool_rebuilds_and_retries_once(
        self, store_root, digest, monkeypatch
    ):
        calls = {"n": 0}

        def dying_embed(*args):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BrokenExecutor("worker died under the job")
            return fake_result(args)

        monkeypatch.setattr(daemon_module, "service_embed_copy", dying_embed)
        with ServerThread(thread_config(store_root, workers=1)) as server:
            status, doc, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "phoenix", "watermark": 5,
            })
            assert status == 200
            assert doc["recognized"] == 5
            assert calls["n"] == 2
            _, text, _ = request(server, "GET", "/metrics")
            assert "repro_http_worker_retries_total 1" in text

    def test_pool_dying_twice_gives_503(
        self, store_root, digest, monkeypatch
    ):
        def always_dying(*args):
            raise BrokenExecutor("unlucky host")

        monkeypatch.setattr(
            daemon_module, "service_embed_copy", always_dying
        )
        with ServerThread(thread_config(store_root, workers=1)) as server:
            status, doc, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "doomed", "watermark": 5,
            })
            assert status == 503
            assert "twice" in doc["error"]


class TestSpanGrafting:
    def test_request_span_tree_is_coherent(self, store_root, digest):
        obs.enable_tracing()
        config = ServerConfig(
            store_root=store_root, port=0, executor="process", workers=1
        )
        with ServerThread(config) as server:
            status, _, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "traced", "watermark": 9,
            })
            assert status == 200
        spans = obs.get_tracer().drain()
        by_name = {s.name: s for s in spans}
        assert "http.request" in by_name
        assert "copy" in by_name
        request_span = by_name["http.request"]
        copy_span = by_name["copy"]
        assert copy_span.parent_id == request_span.span_id
        assert copy_span.trace_id == request_span.trace_id
        assert by_name["copy.embed"].parent_id == copy_span.span_id


class TestOnlineRebalance:
    @pytest.fixture()
    def fabric_root(self, tmp_path):
        from repro.serve.fabric import ShardedArtifactStore

        root = str(tmp_path / "fabric")
        fabric = ShardedArtifactStore(root, shards=2)
        fabric.put(prepare(gcd_module(), KEY, BITS, PIECES), label="gcd")
        return root

    def test_add_then_remove_shard_online(self, fabric_root):
        with ServerThread(thread_config(fabric_root)) as server:
            digest = server.service.store.records()[0].digest

            status, doc, _ = request(server, "POST", "/v1/store/rebalance",
                                     {"action": "add-shard"})
            assert status == 200
            assert doc["action"] == "add-shard"
            assert doc["report"]["added"] == "shard-02"
            assert doc["shards"] == ["shard-00", "shard-01", "shard-02"]

            status, health, _ = request(server, "GET", "/healthz")
            assert status == 200
            assert health["rebalancing"] is False
            assert health["artifacts"] == 1

            # The artifact survived the move (wherever it landed) and
            # the daemon serves from the grown ring without a restart.
            status, embed, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "post-add", "watermark": 3,
            })
            assert status == 200 and embed["verified"] is True

            status, doc, _ = request(server, "POST", "/v1/store/rebalance",
                                     {"action": "remove-shard",
                                      "shard": "shard-02"})
            assert status == 200
            assert doc["report"]["removed"] == "shard-02"
            assert doc["shards"] == ["shard-00", "shard-01"]
            status, embed, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "post-remove", "watermark": 4,
            })
            assert status == 200 and embed["verified"] is True

    def test_rebalance_emits_a_journal_event(self, fabric_root):
        with ServerThread(thread_config(fabric_root)) as server:
            status, _, _ = request(server, "POST", "/v1/store/rebalance",
                                   {"action": "add-shard", "shard": "extra"})
            assert status == 200
            events = server.service.hub.tail(kind="store.rebalance")
            assert len(events) == 1
            assert events[0].attrs["action"] == "add-shard"
            assert events[0].attrs["shards"] == 3

    @pytest.mark.parametrize("doc,fragment", [
        ({}, "action"),
        ({"action": "explode"}, "action"),
        ({"action": "remove-shard"}, "requires 'shard'"),
        ({"action": "add-shard", "shard": 7}, "must be a string"),
        ({"action": "add-shard", "shard": "shard-00"}, "already in fabric"),
        ({"action": "remove-shard", "shard": "ghost"}, "no shard"),
    ])
    def test_rebalance_rejects_bad_requests(self, fabric_root, doc, fragment):
        with ServerThread(thread_config(fabric_root)) as server:
            status, body, _ = request(
                server, "POST", "/v1/store/rebalance", doc
            )
            assert status == 400
            assert fragment in body["error"]

    def test_plain_store_cannot_rebalance(self, store_root):
        with ServerThread(thread_config(store_root)) as server:
            status, body, _ = request(server, "POST", "/v1/store/rebalance",
                                      {"action": "add-shard"})
            assert status == 400
            assert "not a sharded fabric" in body["error"]

    def test_admission_pauses_while_rebalancing(self, fabric_root):
        with ServerThread(thread_config(fabric_root)) as server:
            digest = server.service.store.records()[0].digest
            server.service._rebalancing = True
            try:
                status, body, response = request(
                    server, "POST", "/v1/embed",
                    {"artifact": digest, "copy_id": "x", "watermark": 1},
                )
                assert status == 503
                assert "admission paused" in body["error"]
                assert response.getheader("Retry-After") is not None
                status, health, _ = request(server, "GET", "/healthz")
                assert status == 200
                assert health["rebalancing"] is True
                status, body, _ = request(server, "POST",
                                          "/v1/store/rebalance",
                                          {"action": "add-shard"})
                assert status == 409
            finally:
                server.service._rebalancing = False
            status, embed, _ = request(server, "POST", "/v1/embed", {
                "artifact": digest, "copy_id": "x", "watermark": 1,
            })
            assert status == 200
