"""Fault-injection tests for the daemon's recovery paths and client.

The daemon-side scenarios run with ``executor="thread"`` so an armed
fault plan in the test process is ambient in the workers too; the
``daemon.job`` hook runs inside the worker, so injected delays
genuinely occupy pool slots (real 429s and 504s, not simulations).
"""

import threading
import time

import pytest

from repro import faults
from repro.bytecode_wm import WatermarkKey
from repro.faults.injector import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.pipeline import prepare
from repro.serve import (
    ArtifactStore,
    CircuitBreaker,
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceError,
)
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])
BITS = 16

NO_RETRY = RetryPolicy(max_attempts=1)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_ambient_plan():
    yield
    faults.clear()


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("store"))
    store = ArtifactStore(root)
    store.put(prepare(gcd_module(), KEY, BITS))
    return root


@pytest.fixture(scope="module")
def digest(store_root):
    return ArtifactStore(store_root, create=False).records()[0].digest


def thread_config(store_root, **overrides):
    defaults = dict(
        store_root=store_root, executor="thread", workers=1,
        queue_depth=0, request_timeout=30.0, drain_timeout=10.0,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestCircuitBreakerUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=0)

    def test_full_cycle_with_fake_clock(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=3, reset_after=30.0, clock=lambda: now[0], name="/t"
        )
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()  # still closed below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(30.0)
        now[0] = 31.0
        assert breaker.state == "half_open"
        assert breaker.allow()      # the one probe
        assert not breaker.allow()  # no second probe while it runs
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_full_window(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=1, reset_after=10.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(10.0)
        now[0] = 15.0
        assert not breaker.allow()
        now[0] = 20.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two consecutive

    def test_transitions_feed_metrics(self):
        breaker = CircuitBreaker(threshold=1, name="/m")
        breaker.record_failure()
        counter = get_registry().counter(
            "repro_http_circuit_transitions_total"
        )
        assert counter.value(route="/m", state="open") == 1


class TestInjectedBackpressure:
    def test_delay_fault_drives_real_429(self, store_root, digest):
        """A pinned worker (injected in-worker delay) with queue_depth
        0 makes the second concurrent request a real 429, visible in
        repro_http_requests_total."""
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=0.6, times=1),
        ])
        config = thread_config(store_root)
        with faults.injected(plan), ServerThread(config) as server:
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            slow_result = {}

            def slow():
                slow_result["doc"] = client.embed(digest, "slow", 1)

            worker = threading.Thread(target=slow)
            worker.start()
            time.sleep(0.2)  # the delayed job now owns the only slot
            with pytest.raises(ServiceError) as info:
                client.embed(digest, "rejected", 2)
            worker.join()
        assert info.value.status == 429
        assert slow_result["doc"]["verified"]
        requests = get_registry().counter("repro_http_requests_total")
        assert requests.value(route="rejected", method="-", status="429") == 1
        assert requests.value(
            route="/v1/embed", method="POST", status="200"
        ) == 1

    def test_delay_fault_drives_real_504(self, store_root, digest):
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=0.6, times=1),
        ])
        config = thread_config(store_root, request_timeout=0.1)
        with faults.injected(plan), ServerThread(config) as server:
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            with pytest.raises(ServiceError) as info:
                client.embed(digest, "late", 1)
        assert info.value.status == 504
        requests = get_registry().counter("repro_http_requests_total")
        assert requests.value(
            route="/v1/embed", method="POST", status="504"
        ) == 1

    def test_timeouts_open_the_circuit(self, store_root, digest):
        """Consecutive 504s trip the breaker: the next request fails
        fast with 503 + Retry-After without touching the pool."""
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=0.4, times=2),
        ])
        config = thread_config(
            store_root, request_timeout=0.1,
            circuit_threshold=2, circuit_reset=60.0,
        )
        with faults.injected(plan), ServerThread(config) as server:
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            for n in range(2):
                with pytest.raises(ServiceError) as info:
                    client.embed(digest, f"slow{n}", n + 1)
                assert info.value.status == 504
            with pytest.raises(ServiceError) as info:
                client.embed(digest, "fast-fail", 9)
            assert info.value.status == 503
            assert "circuit open" in info.value.message
            health = client.healthz()
            assert health["circuits"]["/v1/embed"] == "open"
            assert health["circuits"]["/v1/recognize"] == "closed"

    def test_circuit_recovers_through_half_open_probe(
        self, store_root, digest
    ):
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=0.5, times=1),
        ])
        # The reset window must comfortably outlast the gap between the
        # tripping call and the fail-fast check below — on a loaded
        # machine a too-tight window is already half-open by the time
        # the second request lands.
        config = thread_config(
            store_root, request_timeout=0.2,
            circuit_threshold=1, circuit_reset=1.0,
        )
        with faults.injected(plan), ServerThread(config) as server:
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            with pytest.raises(ServiceError):
                client.embed(digest, "trip", 1)   # 504 opens it
            with pytest.raises(ServiceError) as info:
                client.embed(digest, "blocked", 2)
            assert info.value.status == 503
            # Long enough for the reset window *and* for the orphaned
            # delayed job to free the single worker slot.
            time.sleep(1.3)
            doc = client.embed(digest, "probe", 3)
            assert doc["verified"]
            assert client.healthz()["circuits"]["/v1/embed"] == "closed"


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_refuses_new(
        self, store_root, digest
    ):
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=0.5, times=1),
        ])
        config = thread_config(store_root, workers=2, queue_depth=2)
        with faults.injected(plan):
            server = ServerThread(config).start()
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            outcome = {}

            def slow():
                outcome["doc"] = client.embed(digest, "inflight", 7)

            worker = threading.Thread(target=slow)
            worker.start()
            time.sleep(0.2)  # the slow job is now in flight
            service = server.service
            drained = threading.Thread(target=server.shutdown)
            drained.start()
            time.sleep(0.1)
            assert service._draining  # new jobs would now see 503
            worker.join(timeout=30)
            drained.join(timeout=30)
        assert outcome["doc"]["verified"]

    def test_draining_health_and_503(self, store_root, digest):
        """While draining, /healthz reports it and job routes refuse
        with Retry-After."""
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=1.0, times=1),
        ])
        config = thread_config(store_root, workers=1, queue_depth=4)
        with faults.injected(plan):
            server = ServerThread(config).start()
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            hold = threading.Thread(
                target=lambda: client.embed(digest, "hold", 1)
            )
            hold.start()
            time.sleep(0.2)
            drainer = threading.Thread(target=server.shutdown)
            drainer.start()
            time.sleep(0.1)
            health = client.healthz()
            assert health["status"] == "draining"
            with pytest.raises(ServiceError) as info:
                client.embed(digest, "refused", 2)
            assert info.value.status == 503
            assert "draining" in info.value.message
            hold.join(timeout=30)
            drainer.join(timeout=30)


class TestServiceClient:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            ServiceClient("ftp://nope")

    def test_round_trip_embed_and_recognize(self, store_root, digest):
        with ServerThread(thread_config(store_root)) as server:
            client = ServiceClient(server.base_url, retry=NO_RETRY)
            doc = client.embed(digest, "acme", 0x1337)
            assert doc["verified"] and doc["recognized"] == 0x1337
            found = client.recognize(digest, doc["module"])
            assert found["complete"] and found["value"] == 0x1337
            assert "repro_http_requests_total" in client.metrics()

    def test_retries_429_honoring_retry_after(self, store_root, digest):
        """One pinned worker: the client's first try meets a real 429,
        sleeps at least the server's Retry-After, then succeeds."""
        plan = FaultPlan(rules=[
            FaultRule(site="daemon.job", action="delay",
                      delay_seconds=0.5, times=1),
        ])
        naps = []
        config = thread_config(store_root)
        with faults.injected(plan), ServerThread(config) as server:
            client = ServiceClient(
                server.base_url,
                retry=RetryPolicy(
                    max_attempts=4, base_delay=0.0, jitter=0.0
                ),
                sleep=lambda s: (naps.append(s), time.sleep(s)),
            )
            hold = threading.Thread(
                target=lambda: client.embed(digest, "hold", 1)
            )
            hold.start()
            time.sleep(0.2)
            retry_client = ServiceClient(
                server.base_url,
                retry=RetryPolicy(
                    max_attempts=4, base_delay=0.0, jitter=0.0
                ),
                sleep=lambda s: (naps.append(s), time.sleep(s)),
            )
            doc = retry_client.embed(digest, "patient", 2)
            hold.join()
        assert doc["verified"]
        # The 429 carried Retry-After: 1; policy delay was 0, so the
        # client honored the server's larger hint.
        assert naps and naps[0] >= 1.0

    def test_connection_refused_retries_then_raises(self):
        naps = []
        client = ServiceClient(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=0.2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
            sleep=naps.append,
        )
        with pytest.raises(OSError):
            client.request("GET", "/healthz")
        assert len(naps) == 2  # slept between the 3 attempts

    def test_no_retry_for_permanent_statuses(self, store_root, digest):
        naps = []
        with ServerThread(thread_config(store_root)) as server:
            client = ServiceClient(
                server.base_url,
                retry=RetryPolicy(max_attempts=5, base_delay=0.01),
                sleep=naps.append,
            )
            with pytest.raises(ServiceError) as info:
                client.embed("no-such-artifact", "x", 1)
        assert info.value.status == 404
        assert naps == []  # 404 is the caller's problem, not load
