"""Tests for the fault-injection framework and the shared retry policy."""

import os
import pickle

import pytest

from repro import faults
from repro.faults.injector import (
    BYTE_ACTIONS,
    CONTROL_ACTIONS,
    FaultError,
    FaultPlan,
    FaultRule,
)
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_ambient_plan():
    yield
    faults.clear()


class TestFaultRule:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="x", action="explode")

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", action="raise", after=0)
        with pytest.raises(ValueError):
            FaultRule(site="x", action="raise", times=0)
        with pytest.raises(ValueError):
            FaultRule(site="x", action="raise", probability=1.5)

    def test_once_token_requires_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            FaultRule(site="x", action="kill", once_token="t")

    def test_glob_matching(self):
        rule = FaultRule(site="store.write.*", action="disk_full")
        assert rule.matches("store.write.blob")
        assert rule.matches("store.write.manifest")
        assert not rule.matches("store.load")

    def test_action_kind_partition(self):
        assert not CONTROL_ACTIONS & BYTE_ACTIONS


class TestFaultPlan:
    def test_fires_on_exact_hit_count(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", action="raise", after=3),
        ])
        plan.hit("s")
        plan.hit("s")
        with pytest.raises(FaultError):
            plan.hit("s")
        plan.hit("s")  # times=1: exhausted, never again

    def test_times_none_fires_forever(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", action="raise", times=None),
        ])
        for _ in range(5):
            with pytest.raises(FaultError):
                plan.hit("s")

    def test_custom_exception_and_message(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", action="raise", message="boom",
                      exception=TimeoutError),
        ])
        with pytest.raises(TimeoutError, match="boom"):
            plan.hit("s")

    def test_disk_full_and_io_error_are_oserrors(self):
        import errno
        plan = FaultPlan(rules=[
            FaultRule(site="w", action="disk_full"),
            FaultRule(site="r", action="io_error"),
        ])
        with pytest.raises(OSError) as info:
            plan.hit("w")
        assert info.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as info:
            plan.hit("r")
        assert info.value.errno == errno.EIO

    def test_byte_actions_ignore_control_sites_and_vice_versa(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", action="corrupt"),
            FaultRule(site="s", action="raise"),
        ])
        # pipe() only fires byte rules; the raise rule stays dormant.
        mangled = plan.pipe("s", b"payload")
        assert mangled != b"payload" and len(mangled) == len(b"payload")

    def test_corrupt_is_seed_deterministic(self):
        data = bytes(range(64))
        outs = []
        for _ in range(2):
            plan = FaultPlan(
                rules=[FaultRule(site="s", action="corrupt")], seed=7
            )
            outs.append(plan.pipe("s", data))
        assert outs[0] == outs[1] != data

    def test_truncate_halves_payload(self):
        plan = FaultPlan(rules=[FaultRule(site="s", action="truncate")])
        assert plan.pipe("s", b"12345678") == b"1234"

    def test_pickle_resets_counters(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", action="raise", after=2),
        ])
        plan.hit("s")  # counter at 1; next hit would fire
        clone = pickle.loads(pickle.dumps(plan))
        clone.hit("s")  # fresh counters: hit 1 of 2, no fire
        with pytest.raises(FaultError):
            clone.hit("s")

    def test_once_token_fires_once_across_instances(self, tmp_path):
        def make():
            return FaultPlan(rules=[
                FaultRule(site="s", action="raise",
                          once_token="only", state_dir=str(tmp_path)),
            ])

        with pytest.raises(FaultError):
            make().hit("s")
        # A "different process" (fresh plan, fresh counters) sees the
        # marker file and never fires.
        plan = make()
        for _ in range(3):
            plan.hit("s")
        assert os.path.exists(tmp_path / "fault-only.fired")

    def test_firings_recorded_and_counted(self):
        from repro.obs import get_registry
        plan = FaultPlan(rules=[FaultRule(site="s", action="truncate")])
        plan.pipe("s", b"xx")
        assert [(f.site, f.action) for f in plan.firings] == [
            ("s", "truncate")
        ]
        counter = get_registry().counter("repro_faults_injected_total")
        assert counter.value(site="s", action="truncate") == 1


class TestAmbientHooks:
    def test_hooks_are_noops_without_a_plan(self):
        faults.clear()
        faults.check("anything")
        data = b"untouched"
        assert faults.filter_bytes("anything", data) is data

    def test_injected_scopes_and_restores(self):
        plan = FaultPlan(rules=[FaultRule(site="s", action="raise")])
        assert faults.get_plan() is None
        with faults.injected(plan):
            assert faults.get_plan() is plan
            with pytest.raises(FaultError):
                faults.check("s")
        assert faults.get_plan() is None

    def test_install_and_clear(self):
        plan = faults.install(FaultPlan())
        assert faults.get_plan() is plan
        faults.clear()
        assert faults.get_plan() is None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_retries_left(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retries_left(1) and policy.retries_left(2)
        assert not policy.retries_left(3)
        assert not RetryPolicy(max_attempts=1).retries_left(1)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, max_delay=0.5, jitter=0.0
        )
        assert policy.schedule() == [
            0.1, 0.2, 0.4, 0.5, 0.5, 0.5, 0.5
        ]

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=5, jitter=0.5, seed=11).schedule()
        b = RetryPolicy(max_attempts=5, jitter=0.5, seed=11).schedule()
        c = RetryPolicy(max_attempts=5, jitter=0.5, seed=12).schedule()
        assert a == b != c

    def test_jitter_only_shrinks(self):
        raw = RetryPolicy(max_attempts=6, jitter=0.0).schedule()
        jittered = RetryPolicy(max_attempts=6, jitter=0.9, seed=3).schedule()
        assert all(0 < j <= r for j, r in zip(jittered, raw))

    def test_delay_counts_from_one(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)
