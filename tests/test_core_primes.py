"""Tests for modulus selection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crt import pairwise_coprime
from repro.core.primes import (
    choose_moduli,
    is_prime,
    next_prime,
    primes_from,
    product,
    statement_space_size,
)


class TestIsPrime:
    def test_small_values(self):
        primality = {
            0: False, 1: False, 2: True, 3: True, 4: False, 5: True,
            25: False, 29: True, 97: True, 91: False,
        }
        for n, expected in primality.items():
            assert is_prime(n) == expected, n

    def test_carmichael_numbers(self):
        for n in (561, 1105, 1729, 41041):
            assert not is_prime(n)

    def test_large_known_prime(self):
        assert is_prime(2**61 - 1)
        assert not is_prime(2**62 - 1)

    @given(st.integers(2, 10**6))
    def test_matches_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == trial


class TestNextPrime:
    def test_basics(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(13) == 17
        assert next_prime(14) == 17

    def test_primes_from(self):
        assert primes_from(10, 4) == [11, 13, 17, 19]


class TestChooseModuli:
    @pytest.mark.parametrize("bits", [8, 32, 64, 128, 256, 512, 768])
    def test_constraints_hold(self, bits):
        moduli = choose_moduli(bits)
        assert pairwise_coprime(moduli)
        assert all(is_prime(p) for p in moduli)
        assert product(moduli) > 2**bits
        # Statement space fits one cipher block with the 8-bit sparsity
        # margin that bounds false-accepts below 1/256 per window.
        assert statement_space_size(moduli) <= 2**56

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            choose_moduli(0)

    def test_rejects_impossible_width(self):
        with pytest.raises(ValueError):
            choose_moduli(100_000)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 800))
    def test_random_widths(self, bits):
        moduli = choose_moduli(bits)
        assert product(moduli) > 2**bits
        assert statement_space_size(moduli) <= 2**56

    def test_deterministic(self):
        assert choose_moduli(128) == choose_moduli(128)
