"""Unit and property tests for repro.core.crt."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.crt import (
    Congruence,
    crt_pair,
    egcd,
    generalized_crt,
    modinv,
    pairwise_coprime,
)


class TestEgcd:
    def test_textbook_example(self):
        assert egcd(240, 46) == (2, -9, 47)

    def test_zero_left(self):
        g, x, y = egcd(0, 7)
        assert g == 7 and 0 * x + 7 * y == 7

    def test_zero_right(self):
        g, x, y = egcd(7, 0)
        assert g == 7 and 7 * x + 0 * y == 7

    @given(st.integers(0, 10**12), st.integers(0, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert g == math.gcd(a, b)


class TestModinv:
    @given(st.integers(1, 10**9), st.integers(2, 10**9))
    def test_inverse_property(self, a, m):
        if math.gcd(a, m) != 1:
            with pytest.raises(ValueError):
                modinv(a, m)
        else:
            inv = modinv(a, m)
            assert 0 <= inv < m
            assert a * inv % m == 1

    def test_no_inverse(self):
        with pytest.raises(ValueError):
            modinv(4, 8)


class TestCongruence:
    def test_normalizes_value(self):
        assert Congruence(17, 5).value == 2
        assert Congruence(-1, 5).value == 4

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            Congruence(1, 0)

    def test_reduce(self):
        c = Congruence(17, 30)
        assert c.reduce(5) == Congruence(2, 5)
        with pytest.raises(ValueError):
            c.reduce(7)

    def test_consistency(self):
        # W = 17: 17 mod 6 = 5 and 17 mod 15 = 2 share gcd 3 and agree.
        assert Congruence(5, 6).consistent_with(Congruence(2, 15))
        # 5 mod 3 = 2 but 7 mod 3 = 1: no common solution.
        assert not Congruence(5, 6).consistent_with(Congruence(7, 15))
        # Coprime moduli are always consistent.
        assert Congruence(1, 4).consistent_with(Congruence(2, 9))


class TestCrtPair:
    def test_paper_example(self):
        # Figure 3/4: W = 17 with p1=2, p2=3, p3=5.
        a = Congruence(17 % 6, 6)     # W mod p1 p2
        b = Congruence(17 % 10, 10)   # W mod p1 p3
        combined = crt_pair(a, b)
        assert combined is not None
        assert combined.modulus == 30
        assert combined.value == 17

    def test_inconsistent_returns_none(self):
        assert crt_pair(Congruence(0, 6), Congruence(1, 4)) is None

    @given(
        st.integers(0, 10**6),
        st.integers(2, 1000),
        st.integers(2, 1000),
    )
    def test_roundtrip_from_common_solution(self, w, m1, m2):
        combined = crt_pair(Congruence(w, m1), Congruence(w, m2))
        assert combined is not None
        lcm = m1 * m2 // math.gcd(m1, m2)
        assert combined.modulus == lcm
        assert combined.value == w % lcm


class TestGeneralizedCrt:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            generalized_crt([])

    def test_single(self):
        assert generalized_crt([Congruence(3, 7)]) == Congruence(3, 7)

    def test_figure4_recombination(self):
        # Statements surviving the attack in Figure 4.
        stmts = [Congruence(5, 6), Congruence(7, 10)]
        combined = generalized_crt(stmts)
        assert combined.value == 17
        assert combined.modulus == 30

    def test_inconsistent_raises(self):
        with pytest.raises(ValueError):
            generalized_crt([Congruence(0, 6), Congruence(1, 6)])

    @given(
        st.integers(0, 10**9),
        st.lists(st.integers(2, 500), min_size=1, max_size=6),
    )
    def test_reconstructs_w_mod_lcm(self, w, moduli):
        combined = generalized_crt(Congruence(w, m) for m in moduli)
        lcm = 1
        for m in moduli:
            lcm = lcm * m // math.gcd(lcm, m)
        assert combined.modulus == lcm
        assert combined.value == w % lcm


def test_pairwise_coprime():
    assert pairwise_coprime([2, 3, 5])
    assert not pairwise_coprime([2, 3, 6])
    assert pairwise_coprime([])
    assert pairwise_coprime([10])
