"""Tests for the wee → N32 code generator.

The strongest check is differential: every program must produce the
same output compiled to WVM (64-bit ints) and to N32 (32-bit ints),
over values where the widths agree.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.lang.codegen_native import compile_source_native
from repro.native import MachineFault, run_image
from repro.vm import run_module


def run_native(src, inputs=()):
    return run_image(compile_source_native(src), inputs).output


def run_both(src, inputs=()):
    native = run_native(src, inputs)
    vm = run_module(compile_source(src), inputs).output
    return native, vm


class TestBasics:
    @pytest.mark.parametrize("expr,expected", [
        ("2 + 3 * 4", 14), ("(2 + 3) * 4", 20), ("-7 / 2", -3),
        ("-7 % 2", -1), ("1 << 10", 1024), ("-64 >> 3", -8),
        ("12 & 10", 8), ("12 | 10", 14), ("12 ^ 10", 6),
        ("~0", -1), ("!0", 1), ("!5", 0), ("3 < 4", 1), ("4 <= 3", 0),
        ("5 == 5", 1), ("5 != 5", 0), ("1 && 2", 1), ("0 || 7", 1),
    ])
    def test_expressions(self, expr, expected):
        assert run_native(f"fn main() {{ print({expr}); return 0; }}") \
            == [expected]

    def test_32bit_wraparound(self):
        out = run_native(
            "fn main() { print(2147483647 + 1); return 0; }"
        )
        assert out == [-2147483648]

    def test_division_by_zero_faults(self):
        with pytest.raises(MachineFault, match="division by zero"):
            run_native("fn main() { print(1 / 0); return 0; }")


class TestControlAndCalls:
    def test_recursion(self):
        src = """
        fn ack(m, n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        fn main() { print(ack(2, 3)); return 0; }
        """
        assert run_native(src) == [9]

    def test_argument_order(self):
        src = """
        fn f(a, b, c) { return a * 100 + b * 10 + c; }
        fn main() { print(f(1, 2, 3)); return 0; }
        """
        assert run_native(src) == [123]

    def test_short_circuit(self):
        src = """
        fn boom() { return 1 / 0; }
        fn main() {
            if (0 && boom()) { print(1); } else { print(2); }
            if (1 || boom()) { print(3); }
            return 0;
        }
        """
        assert run_native(src) == [2, 3]

    def test_break_continue(self):
        src = """
        fn main() {
            var total = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                total = total + i;
            }
            print(total);
            return 0;
        }
        """
        assert run_native(src) == [25]

    def test_globals(self):
        src = """
        global count;
        fn bump() { count = count + 1; return count; }
        fn main() { bump(); bump(); print(bump()); return 0; }
        """
        assert run_native(src) == [3]


class TestArrays:
    def test_roundtrip(self):
        src = """
        fn main() {
            var a = new(8);
            for (var i = 0; i < len(a); i = i + 1) { a[i] = i * 3; }
            var s = 0;
            for (var j = 0; j < 8; j = j + 1) { s = s + a[j]; }
            print(s);
            print(len(a));
            return 0;
        }
        """
        assert run_native(src) == [84, 8]

    def test_nested_arrays(self):
        src = """
        fn main() {
            var grid = new(3);
            for (var i = 0; i < 3; i = i + 1) {
                var row = new(3);
                row[i] = i + 10;
                grid[i] = row;
            }
            print(grid[1][1]);
            print(grid[2][2]);
            return 0;
        }
        """
        assert run_native(src) == [11, 12]

    def test_heap_allocations_are_disjoint(self):
        src = """
        fn main() {
            var a = new(4);
            var b = new(4);
            a[0] = 1;
            b[0] = 2;
            print(a[0]);
            print(b[0]);
            return 0;
        }
        """
        assert run_native(src) == [1, 2]


class TestDifferential:
    PROGRAMS = [
        ("""
        fn gcd(a, b) { while (b != 0) { var t = a % b; a = b; b = t; }
                       return a; }
        fn main() { print(gcd(input(), input())); return 0; }
        """, [1071, 462]),
        ("""
        fn main() {
            var n = input();
            var flags = new(n);
            var count = 0;
            for (var i = 2; i < n; i = i + 1) {
                if (flags[i] == 0) {
                    count = count + 1;
                    for (var j = i + i; j < n; j = j + i) { flags[j] = 1; }
                }
            }
            print(count);
            return 0;
        }
        """, [200]),
        ("""
        fn collatz(n) {
            var steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps = steps + 1;
            }
            return steps;
        }
        fn main() { print(collatz(input())); return 0; }
        """, [97]),
    ]

    @pytest.mark.parametrize("src,inputs", PROGRAMS)
    def test_native_matches_vm(self, src, inputs):
        native, vm = run_both(src, inputs)
        assert native == vm

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(-30000, 30000),
        st.integers(-30000, 30000),
        st.sampled_from(["+", "-", "*", "&", "|", "^"]),
    )
    def test_arith_differential(self, a, b, op):
        # Operand range keeps every result within 32 bits, where the
        # 64-bit WVM and 32-bit N32 semantics coincide (the substrates
        # intentionally model Java longs vs IA-32 ints).
        src = f"fn main() {{ print(({a}) {op} ({b})); return 0; }}"
        native, vm = run_both(src)
        assert native == vm

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 200))
    def test_gcd_differential(self, a, b):
        src = f"""
        fn gcd(a, b) {{ while (b != 0) {{ var t = a % b; a = b; b = t; }}
                        return a; }}
        fn main() {{ print(gcd({a}, {b})); return 0; }}
        """
        native, vm = run_both(src)
        assert native == vm


@pytest.mark.slow
class TestSpecKernelsCrossCheck:
    """Every SPEC-like kernel behaves identically on both substrates."""

    @pytest.mark.parametrize("name", [
        "bzip2", "crafty", "gap", "gcc", "gzip",
        "mcf", "parser", "twolf", "vortex", "vpr",
    ])
    def test_kernel(self, name):
        from repro.workloads.spec import (
            TRAIN_INPUT, spec_native, spec_vm,
        )
        native = run_image(spec_native(name), TRAIN_INPUT).output
        vm = run_module(spec_vm(name), TRAIN_INPUT).output
        assert native == vm
        assert native, f"{name} produced no output"
