"""Regression tests for recognition diagnostics on *failed* attempts.

Two regressions pinned here:

1. The zero-hit funnel: a recognition attempt that inspects windows
   but accepts nothing must still produce a diagnostic report (the
   ``--diagnose`` flags print it even when recovery fails).
2. The out-of-range false positive: junk windows decrypted under a
   wrong key can form a mutually consistent statement set covering
   every modulus; its CRT value lands in the product-of-moduli space,
   far above ``2**watermark_bits``. ``recognize_bits`` must demote
   such a "complete" recovery to a rejection instead of reporting a
   watermark that was never embedded.
"""

import random

import pytest

from repro.bytecode_wm.embedder import embed
from repro.bytecode_wm.keys import WatermarkKey
from repro.bytecode_wm.recognizer import (
    recognition_report,
    recognize_bits,
    recognize_with_report,
)
from repro.cli import main as cli_main
from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.enumeration import Statement, StatementEnumeration
from repro.core.primes import choose_moduli
from repro.vm import disassemble
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"vendor", inputs=[25, 10])
BITS = 16


def crafted_bitstring(value: int, key: WatermarkKey, bits: int):
    """Build a trace bit-string asserting ``W = value`` on every pair.

    Encodes one statement per modulus pair, encrypts each with the
    key's cipher, and concatenates the 64-bit blocks; the recognizer's
    aligned windows then decode exactly these statements.
    """
    moduli = choose_moduli(bits)
    enum = StatementEnumeration(moduli)
    cipher = key.cipher()
    out = []
    for i in range(len(moduli)):
        for j in range(i + 1, len(moduli)):
            stmt = Statement(i, j, value % (moduli[i] * moduli[j]))
            block = cipher.encrypt_block(enum.encode(stmt))
            out.extend(int_to_bits_lsb_first(block, 64))
    return out


class TestOutOfRangeRejection:
    def test_forged_overwide_value_is_demoted(self):
        moduli = choose_moduli(BITS)
        product = 1
        for m in moduli:
            product *= m
        forged = product - 1  # valid residue system, but >= 2**BITS
        assert forged >= (1 << BITS)

        result = recognize_bits(
            crafted_bitstring(forged, KEY, BITS), KEY, BITS
        )
        assert not result.complete
        assert result.value is None
        # The partial information survives for diagnostics.
        assert result.congruence is not None
        assert result.congruence.value == forged

    def test_rejection_is_explained_in_report(self):
        moduli = choose_moduli(BITS)
        product = 1
        for m in moduli:
            product *= m
        result = recognize_bits(
            crafted_bitstring(product - 1, KEY, BITS), KEY, BITS
        )
        report = recognition_report(result, BITS)
        assert not report.complete
        assert not report.moduli_missing
        assert any("exceeds" in note for note in report.notes)
        assert "NOT recovered" in report.summary()

    def test_in_range_value_still_recovered(self):
        result = recognize_bits(
            crafted_bitstring(0x1337, KEY, BITS), KEY, BITS
        )
        assert result.complete
        assert result.value == 0x1337
        report = recognition_report(result, BITS)
        assert not any("exceeds" in note for note in report.notes)


class TestZeroHitFunnel:
    def test_junk_bits_report_inspected_but_nothing_accepted(self):
        rng = random.Random(7)
        bits = [rng.randrange(2) for _ in range(600)]
        result, report = _bits_report(bits)
        assert result.windows_inspected > 0
        assert not result.complete
        if result.candidates_found == 0:
            assert any("no window decrypted" in n for n in report.notes)
        text = report.summary()
        assert "NOT recovered" in text
        assert "decrypt attempts" in text

    def test_wrong_key_on_marked_module_fails_with_diagnostics(self):
        marked = embed(
            gcd_module(), 0x1337, KEY, pieces=8, watermark_bits=BITS
        ).module
        wrong = WatermarkKey(secret=b"imposter", inputs=[25, 10])
        result, report = recognize_with_report(
            marked, wrong, watermark_bits=BITS
        )
        assert not result.complete
        assert result.windows_inspected > 0
        assert report.windows_inspected == result.windows_inspected
        assert "NOT recovered" in report.summary()


def _bits_report(bits):
    result = recognize_bits(bits, KEY, BITS)
    return result, recognition_report(result, BITS)


class TestDiagnoseCLI:
    """``--diagnose`` must print the funnel even when recognition fails."""

    @pytest.fixture()
    def marked_path(self, tmp_path):
        marked = embed(
            gcd_module(), 0x1337, KEY, pieces=8, watermark_bits=BITS
        ).module
        path = tmp_path / "marked.wasm"
        path.write_text(disassemble(marked))
        return path

    def test_recognize_diagnose_on_failure(self, marked_path, capsys):
        rc = cli_main([
            "recognize", str(marked_path), "--bits", str(BITS),
            "--secret", "imposter", "--inputs", "25,10", "--diagnose",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "bytecode recognition" in captured.err
        assert "decrypt attempts" in captured.err
        assert "no watermark recovered" in captured.err

    def test_recognize_diagnose_on_success(self, marked_path, capsys):
        rc = cli_main([
            "recognize", str(marked_path), "--bits", str(BITS),
            "--secret", "vendor", "--inputs", "25,10", "--diagnose",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "0x1337" in captured.out
        assert "bytecode recognition" in captured.err

    def test_nextract_diagnose_on_unmarked_image(self, tmp_path, capsys):
        src = tmp_path / "gcd.wee"
        src.write_text(
            "fn main() {\n"
            "    var a = input();\n"
            "    var b = input();\n"
            "    while (b > 0) {\n"
            "        var t = a % b;\n"
            "        a = b;\n"
            "        b = t;\n"
            "    }\n"
            "    print(a);\n"
            "}\n"
        )
        img = tmp_path / "gcd.n32"
        assert cli_main(["ncompile", str(src), "-o", str(img)]) == 0
        rc = cli_main([
            "nextract", str(img), "--inputs", "25,10", "--diagnose",
        ])
        captured = capsys.readouterr()
        assert rc != 0
        assert "native recognition" in captured.err
        assert "NOT recovered" in captured.err
