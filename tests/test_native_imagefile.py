"""Tests for the N32 image file format and the native CLI commands."""

import io

import pytest

from repro.cli import main as cli_main
from repro.lang.codegen_native import compile_source_native
from repro.native import run_image
from repro.native.imagefile import ImageFormatError, dump_image, load_image
from repro.native_wm import embed_native

APP = """
fn work(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }
    }
    return acc;
}
fn aux(x) {
    var y = 0;
    if (x > 9) { y = x * 2; } else { y = x + 5; }
    return y;
}
fn main() { var n = input(); print(work(n)); print(aux(n)); return 0; }
"""


class TestImageFile:
    def _roundtrip(self, image):
        buf = io.StringIO()
        dump_image(image, buf)
        buf.seek(0)
        return load_image(buf)

    def test_roundtrip_identity(self):
        image = compile_source_native(APP)
        loaded = self._roundtrip(image)
        assert loaded.text == image.text
        assert bytes(loaded.data) == bytes(image.data)
        assert loaded.entry == image.entry
        assert loaded.data_base == image.data_base
        assert loaded.bss_bytes == image.bss_bytes
        assert loaded.symbols == image.symbols

    def test_roundtrip_executes_identically(self):
        image = compile_source_native(APP)
        loaded = self._roundtrip(image)
        assert run_image(loaded, [40]).output == \
            run_image(image, [40]).output

    def test_watermarked_image_survives_serialization(self):
        """Regression: the embedder appends initialized tables *after*
        the bss heap; the file format must carry them."""
        image = compile_source_native(APP)
        emb = embed_native(image, 0xFACE, 16, [40])
        loaded = self._roundtrip(emb.image)
        assert run_image(loaded, [40]).output == \
            run_image(image, [40]).output
        from repro.native_wm import extract_native_auto
        assert extract_native_auto(loaded, [40],
                                   width=16).watermark == 0xFACE

    def test_rejects_garbage(self):
        with pytest.raises(ImageFormatError, match="not an image"):
            load_image(io.StringIO("nope"))

    def test_rejects_wrong_magic(self):
        with pytest.raises(ImageFormatError, match="magic"):
            load_image(io.StringIO('{"magic": "elf"}'))

    def test_rejects_wrong_version(self):
        with pytest.raises(ImageFormatError, match="version"):
            load_image(io.StringIO('{"magic": "n32-image", "version": 99}'))

    def test_compression_pays_off(self):
        image = compile_source_native(APP)  # ~1 MB heap
        buf = io.StringIO()
        dump_image(image, buf)
        assert len(buf.getvalue()) < 20_000


class TestNativeCLI:
    @pytest.fixture()
    def workspace(self, tmp_path):
        src = tmp_path / "app.wee"
        src.write_text(APP)
        img = tmp_path / "app.n32"
        assert cli_main(["ncompile", str(src), "-o", str(img)]) == 0
        return tmp_path, img

    def test_ncompile_nrun(self, workspace, capsys):
        _tmp, img = workspace
        assert cli_main(["nrun", str(img), "--inputs", "40"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ["247", "80"]

    def test_nembed_nextract_cycle(self, workspace, capsys):
        tmp, img = workspace
        marked = tmp / "marked.n32"
        rc = cli_main([
            "nembed", str(img), "-o", str(marked),
            "--watermark", "0xFACE", "--bits", "16", "--inputs", "40",
        ])
        assert rc == 0
        capsys.readouterr()
        assert cli_main(["nrun", str(marked), "--inputs", "40"]) == 0
        assert capsys.readouterr().out.splitlines() == ["247", "80"]
        rc = cli_main([
            "nextract", str(marked), "--bits", "16", "--inputs", "40",
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "0xface"

    def test_nextract_unmarked_fails(self, workspace, capsys):
        _tmp, img = workspace
        rc = cli_main(["nextract", str(img), "--inputs", "40"])
        assert rc == 1

    def test_ndis(self, workspace, capsys):
        _tmp, img = workspace
        assert cli_main(["ndis", str(img), "--max", "8"]) == 0
        out = capsys.readouterr().out
        assert "0x08048" in out
