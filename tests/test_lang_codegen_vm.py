"""Tests for the wee → WVM code generator (end-to-end execution)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.vm import run_module, verify_module


def run(src, inputs=()):
    module = compile_source(src)
    verify_module(module)
    return run_module(module, inputs).output


class TestBasics:
    def test_arithmetic(self):
        assert run("fn main() { print(2 + 3 * 4 - 1); return 0; }") == [13]

    def test_division_truncation(self):
        assert run("fn main() { print(-7 / 2); print(-7 % 2); return 0; }") \
            == [-3, -1]

    def test_unary(self):
        assert run("fn main() { print(-5); print(!0); print(!7); print(~0); "
                   "return 0; }") == [-5, 1, 0, -1]

    def test_precedence_parens(self):
        assert run("fn main() { print((2 + 3) * 4); return 0; }") == [20]

    def test_comparisons_as_values(self):
        assert run("fn main() { print(3 < 4); print(4 < 3); print(5 == 5); "
                   "return 0; }") == [1, 0, 1]

    def test_bitops(self):
        assert run("fn main() { print(12 & 10); print(12 | 10); "
                   "print(12 ^ 10); print(1 << 5); print(-32 >> 2); "
                   "return 0; }") == [8, 14, 6, 32, -8]


class TestControlFlow:
    def test_if_else(self):
        src = """
        fn classify(x) {
            if (x < 0) { return -1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        fn main() {
            print(classify(-5)); print(classify(0)); print(classify(9));
            return 0;
        }
        """
        assert run(src) == [-1, 0, 1]

    def test_while(self):
        src = """
        fn main() {
            var total = 0;
            var i = 1;
            while (i <= 10) { total = total + i; i = i + 1; }
            print(total);
            return 0;
        }
        """
        assert run(src) == [55]

    def test_for_with_break_continue(self):
        src = """
        fn main() {
            var total = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                total = total + i;
            }
            print(total);
            return 0;
        }
        """
        assert run(src) == [1 + 3 + 5 + 7 + 9]

    def test_short_circuit_and(self):
        # Division by zero on the right must not execute.
        src = """
        fn boom() { return 1 / 0; }
        fn main() {
            if (0 && boom()) { print(1); } else { print(2); }
            return 0;
        }
        """
        assert run(src) == [2]

    def test_short_circuit_or(self):
        src = """
        fn boom() { return 1 / 0; }
        fn main() {
            if (1 || boom()) { print(1); } else { print(2); }
            return 0;
        }
        """
        assert run(src) == [1]

    def test_logical_values(self):
        assert run("fn main() { print(1 && 2); print(0 || 0); print(3 || 0); "
                   "return 0; }") == [1, 0, 1]

    def test_nested_loops(self):
        src = """
        fn main() {
            var count = 0;
            for (var i = 0; i < 5; i = i + 1) {
                for (var j = 0; j < 5; j = j + 1) {
                    if (i == j) { continue; }
                    count = count + 1;
                }
            }
            print(count);
            return 0;
        }
        """
        assert run(src) == [20]


class TestFunctionsAndData:
    def test_recursion(self):
        src = """
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { print(fib(15)); return 0; }
        """
        assert run(src) == [610]

    def test_implicit_return_zero(self):
        assert run("fn f() { } fn main() { print(f()); return 0; }") == [0]

    def test_globals(self):
        src = """
        global counter;
        fn bump() { counter = counter + 1; return counter; }
        fn main() { bump(); bump(); print(bump()); return 0; }
        """
        assert run(src) == [3]

    def test_arrays(self):
        src = """
        fn main() {
            var a = new(5);
            for (var i = 0; i < len(a); i = i + 1) { a[i] = i * i; }
            var total = 0;
            for (var j = 0; j < 5; j = j + 1) { total = total + a[j]; }
            print(total);
            return 0;
        }
        """
        assert run(src) == [0 + 1 + 4 + 9 + 16]

    def test_array_of_references(self):
        src = """
        fn main() {
            var rows = new(3);
            for (var i = 0; i < 3; i = i + 1) {
                var row = new(3);
                row[i] = i + 1;
                rows[i] = row;
            }
            print(rows[2][2]);
            return 0;
        }
        """
        assert run(src) == [3]

    def test_input(self):
        assert run("fn main() { print(input() * input()); return 0; }",
                   inputs=[6, 7]) == [42]

    def test_gcd_paper_example(self):
        src = """
        fn gcd(a, b) {
            while (a % b != 0) {
                var t = a % b;
                a = b;
                b = t;
            }
            return b;
        }
        fn main() { print(gcd(25, 10)); return 0; }
        """
        assert run(src) == [5]


class TestCompiledModulesVerify:
    SOURCES = [
        "fn main() { return 0; }",
        "fn main() { var x = 0; while (x < 9) { x = x + 1; } print(x); return 0; }",
        """
        fn even(n) { if (n % 2 == 0) { return 1; } return 0; }
        fn main() {
            var hits = 0;
            for (var i = 0; i < 20; i = i + 1) {
                if (even(i) && i > 4 || i == 1) { hits = hits + 1; }
            }
            print(hits);
            return 0;
        }
        """,
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_verifies(self, src):
        verify_module(compile_source(src))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(-1000, 1000),
    st.integers(-1000, 1000),
    st.sampled_from(["+", "-", "*", "&", "|", "^"]),
)
def test_codegen_matches_python_semantics(a, b, op):
    result = run(f"fn main() {{ print({a} {op} {b}); return 0; }}")
    expected = eval(f"({a}) {op} ({b})")
    assert result == [expected]


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 40), st.integers(1, 40))
def test_compiled_gcd_matches_math(a, b):
    import math
    src = f"""
    fn gcd(a, b) {{
        while (b != 0) {{ var t = a % b; a = b; b = t; }}
        return a;
    }}
    fn main() {{ print(gcd({a}, {b})); return 0; }}
    """
    assert run(src) == [math.gcd(a, b)]
