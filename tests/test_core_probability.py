"""Tests for the Eq. (1) success-probability model behind Figure 5."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.probability import (
    incident_edges,
    simulate_deletion,
    simulate_k_intact,
    success_probability_deletion,
    success_probability_k_intact,
)


class TestIncidentEdges:
    def test_known_counts(self):
        assert incident_edges(5, 0) == 0
        assert incident_edges(5, 1) == 4
        assert incident_edges(5, 5) == 10  # all edges of K5
        assert incident_edges(4, 2) == 2 * 2 + 1

    @given(st.integers(1, 30), st.data())
    def test_monotone_in_j(self, n, data):
        j = data.draw(st.integers(0, n - 1))
        assert incident_edges(n, j) <= incident_edges(n, j + 1)


class TestDeletionProbability:
    def test_extremes(self):
        assert success_probability_deletion(5, 0.0) == pytest.approx(1.0)
        assert success_probability_deletion(5, 1.0) == pytest.approx(0.0)

    def test_single_node(self):
        # A single node has no edges, so it can never acquire an
        # incident edge: the model gives probability 0 for every q.
        assert success_probability_deletion(1, 0.0) == pytest.approx(0.0)
        assert success_probability_deletion(1, 1.0) == pytest.approx(0.0)

    def test_two_nodes_closed_form(self):
        # Success iff the single edge survives: 1 - q.
        for q in (0.0, 0.25, 0.5, 0.9):
            assert success_probability_deletion(2, q) == pytest.approx(1 - q)

    def test_three_nodes_closed_form(self):
        # P(no isolated vertex in K3) = 1 - 3q^2 + 2q^3.
        for q in (0.1, 0.5, 0.8):
            expected = 1 - 3 * q**2 + 2 * q**3
            assert success_probability_deletion(3, q) == pytest.approx(expected)

    @given(st.integers(2, 25), st.floats(0, 1))
    def test_is_probability(self, n, q):
        p = success_probability_deletion(n, q)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 8), st.sampled_from([0.1, 0.3, 0.5, 0.7]))
    def test_matches_monte_carlo(self, n, q):
        exact = success_probability_deletion(n, q)
        est = simulate_deletion(n, q, trials=3000)
        assert abs(exact - est) < 0.05

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            success_probability_deletion(0, 0.5)
        with pytest.raises(ValueError):
            success_probability_deletion(5, 1.5)


class TestKIntactProbability:
    def test_extremes(self):
        n = 6
        edges = math.comb(n, 2)
        assert success_probability_k_intact(n, edges) == pytest.approx(1.0)
        assert success_probability_k_intact(n, 0) == pytest.approx(0.0)
        # Fewer than ceil(n/2) edges cannot cover n nodes.
        assert success_probability_k_intact(n, 2) == pytest.approx(0.0)

    def test_minimum_cover_is_matching(self):
        # n=4, k=2: covering needs a perfect matching; 3 of C(6,2)=15.
        assert success_probability_k_intact(4, 2) == pytest.approx(3 / 15)

    @given(st.integers(2, 12), st.data())
    def test_is_probability_and_monotone(self, n, data):
        edges = math.comb(n, 2)
        k = data.draw(st.integers(0, edges - 1))
        p1 = success_probability_k_intact(n, k)
        p2 = success_probability_k_intact(n, k + 1)
        assert 0.0 <= p1 <= 1.0
        assert p2 >= p1 - 1e-12  # more surviving edges never hurts

    @settings(max_examples=8, deadline=None)
    @given(st.integers(3, 8), st.data())
    def test_matches_monte_carlo(self, n, data):
        edges = math.comb(n, 2)
        k = data.draw(st.integers(1, edges))
        exact = success_probability_k_intact(n, k)
        est = simulate_k_intact(n, k, trials=3000)
        assert abs(exact - est) < 0.06

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            success_probability_k_intact(4, -1)
        with pytest.raises(ValueError):
            success_probability_k_intact(4, 7)
