"""The campaign subsystem: generator oracle, attack schedules, runner
determinism, and the replayability contract.

The replayability regression here pins the PR's acceptance criterion:
a campaign with a fixed seed reproduces identical per-cell recovery
outcomes across two *independent* invocations (full recompute, not a
checkpoint replay), and the CLI's ``outcomes.json`` is byte-identical.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignConfig,
    CampaignReport,
    GeneratorConfig,
    campaign_attacks,
    cell_seed,
    copy_rng,
    differential_check,
    generate_corpus,
    generate_program,
    run_campaign,
)
from repro.cli import main as cli_main
from repro.vm import run_module

# One small matrix shared by the runner tests: 1 workload, 2 copies,
# 2 single-level attacks -> 2 cells, a few seconds end to end.
_FAST = dict(
    seed=11,
    workloads=1,
    copies=2,
    bits=(16,),
    attacks=("block-reordering", "locals-renumbering"),
)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------

def test_generator_is_deterministic():
    assert generate_program(17).source == generate_program(17).source
    assert generate_program(17).inputs == generate_program(17).inputs


def test_generator_seeds_diversify():
    sources = {generate_program(seed).source for seed in range(10)}
    assert len(sources) == 10


def test_generated_programs_pass_the_oracle():
    for program in generate_corpus(5, base_seed=100):
        oracle = differential_check(program)
        assert oracle.ok, oracle.detail
        assert oracle.branch_events >= 8


def test_generated_program_runs_on_its_key_inputs():
    program = generate_program(3)
    result = run_module(program.module(), program.inputs)
    assert result.output  # every program prints its locals


def test_generator_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(functions=-1)
    with pytest.raises(ValueError):
        GeneratorConfig(input_count=0)
    with pytest.raises(ValueError):
        GeneratorConfig(max_loop_nest=0)


def test_oracle_rejects_branch_starved_programs():
    # A straight-line program can't host a watermark; the oracle's
    # min_branch_events floor keeps such workloads out of the matrix.
    program = generate_program(0)
    starved = differential_check(program, min_branch_events=10**9)
    assert not starved.ok
    assert "branch events" in starved.detail


# ---------------------------------------------------------------------------
# Attack schedules
# ---------------------------------------------------------------------------

def test_unknown_attack_name_fails_early():
    with pytest.raises(KeyError, match="unknown attack"):
        campaign_attacks(["not-an-attack"])
    with pytest.raises(KeyError):
        CampaignConfig(attacks=("not-an-attack",))


def test_every_schedule_preserves_semantics():
    """Each registered attack at full intensity keeps the generated
    program's behaviour on its key inputs (they are all supposed to be
    semantics-preserving transformations)."""
    program = generate_program(5)
    module = program.module()
    want = run_module(module, program.inputs).output
    for schedule in campaign_attacks():
        rng = copy_rng(1234, schedule.name)
        attacked = schedule.apply(module, 1.0, rng)
        got = run_module(attacked, program.inputs).output
        assert got == want, schedule.name


def test_cell_seed_is_coordinate_pure():
    a = cell_seed(7, "w", 16, "noop-insertion", 1)
    assert a == cell_seed(7, "w", 16, "noop-insertion", 1)
    neighbours = {
        cell_seed(7, "w", 16, "noop-insertion", 0),
        cell_seed(7, "w", 16, "noop-insertion", 2),
        cell_seed(7, "w", 8, "noop-insertion", 1),
        cell_seed(7, "x", 16, "noop-insertion", 1),
        cell_seed(8, "w", 16, "noop-insertion", 1),
    }
    assert a not in neighbours


# ---------------------------------------------------------------------------
# Runner: the replayability contract (acceptance criterion)
# ---------------------------------------------------------------------------

def test_fixed_seed_campaign_replays_identically():
    first = run_campaign(CampaignConfig(**_FAST))
    second = run_campaign(CampaignConfig(**_FAST))
    assert first.outcomes() == second.outcomes()
    assert first.outcomes_json() == second.outcomes_json()
    assert first.outcomes_digest() == second.outcomes_digest()
    # Sanity on content: layout attacks never dislodge the mark.
    assert first.recovery_rate == 1.0
    assert all(c.program_ok == c.copies for c in first.cells)
    assert all(c.cell_seed == cell_seed(
        first.seed, c.workload, c.bits, c.attack, c.intensity_index
    ) for c in first.cells)


def test_campaign_resumes_from_cell_journal(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    cold = run_campaign(CampaignConfig(checkpoint_dir=ckpt, **_FAST))
    assert cold.resumed_cells == 0
    assert os.path.exists(os.path.join(ckpt, "cells.jsonl"))
    warm = run_campaign(
        CampaignConfig(checkpoint_dir=ckpt, resume=True, **_FAST)
    )
    assert warm.resumed_cells == len(warm.cells) == len(cold.cells)
    assert warm.outcomes_json() == cold.outcomes_json()


def test_campaign_report_roundtrips_through_disk(tmp_path):
    report = run_campaign(CampaignConfig(**_FAST))
    path = str(tmp_path / "report.json")
    report.write(path)
    again = CampaignReport.read(path)
    assert again.to_dict() == report.to_dict()
    assert again.outcomes_json() == report.outcomes_json()
    # The replay fields identify every copy the cell attacked.
    for cell in again.cells:
        assert len(cell.copy_watermarks) == cell.copies
        assert len(cell.copy_seeds) == cell.copies


@pytest.mark.slow
def test_cli_campaign_outcomes_are_byte_identical(tmp_path):
    """`repro campaign --seed S` twice -> byte-identical outcomes.json
    (the acceptance criterion, at the CLI boundary)."""
    args = ["campaign", "--seed", "11", "--workloads", "1",
            "--copies", "2", "--attacks",
            "block-reordering,locals-renumbering"]
    assert cli_main(args + ["-o", str(tmp_path / "a")]) == 0
    assert cli_main(args + ["-o", str(tmp_path / "b")]) == 0
    a = (tmp_path / "a" / "outcomes.json").read_bytes()
    b = (tmp_path / "b" / "outcomes.json").read_bytes()
    assert a == b
    doc = json.loads(a)
    assert doc["seed"] == 11
    assert doc["cells"]
    report = CampaignReport.read(str(tmp_path / "a" / "report.json"))
    assert report.outcomes() == [
        CampaignCell.from_dict(c).outcome_dict() for c in doc["cells"]
    ]
