"""Tests for the persistent artifact store (`repro.serve.store`)."""

import json
import os

import pytest

from repro import obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import (
    CopySpec,
    PrepareCache,
    prepare,
    prepare_fingerprint,
    run_batch,
)
from repro.serve.store import ArtifactStore, StoreError
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"store-key", inputs=[25, 10])
BITS = 16
PIECES = 8


@pytest.fixture(autouse=True)
def _isolated_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(scope="module")
def prepared():
    return prepare(gcd_module(), KEY, BITS, PIECES)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestRoundTrip:
    def test_put_load_is_identity_addressed(self, store, prepared):
        record = store.put(prepared, label="gcd v1")
        assert record.digest == prepared.fingerprint()
        assert record.label == "gcd v1"
        loaded = store.load(record.digest)
        assert loaded.fingerprint() == prepared.fingerprint()
        assert loaded.watermark_bits == BITS
        assert loaded.pieces == PIECES

    def test_put_is_idempotent(self, store, prepared):
        first = store.put(prepared)
        second = store.put(prepared)
        assert first.digest == second.digest
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path, prepared):
        root = str(tmp_path / "store")
        digest = ArtifactStore(root).put(prepared).digest
        reopened = ArtifactStore(root, create=False)
        assert digest in reopened
        assert reopened.load(digest).fingerprint() == digest

    def test_refresh_sees_foreign_writes(self, tmp_path, prepared):
        root = str(tmp_path / "store")
        holder = ArtifactStore(root)
        other = ArtifactStore(root)
        digest = other.put(prepared).digest
        assert digest not in holder
        holder.refresh()
        assert digest in holder

    def test_missing_store_requires_create(self, tmp_path):
        with pytest.raises(StoreError, match="no artifact store"):
            ArtifactStore(str(tmp_path / "nowhere"), create=False)


class TestIntegrity:
    def test_corrupt_blob_is_refused(self, store, prepared):
        record = store.put(prepared)
        blob = os.path.join(store.root, "blobs", f"{record.digest}.pickle")
        data = bytearray(open(blob, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(blob, "wb").write(bytes(data))
        with pytest.raises(StoreError, match="integrity"):
            store.load(record.digest)

    def test_missing_blob_is_refused(self, store, prepared):
        record = store.put(prepared)
        os.remove(os.path.join(store.root, "blobs", f"{record.digest}.pickle"))
        with pytest.raises(StoreError):
            store.load(record.digest)

    def test_verify_reports_all_problem_kinds(self, store, prepared):
        record = store.put(prepared)
        assert store.verify() == []
        blob_dir = os.path.join(store.root, "blobs")
        # 1: corrupt the real blob
        blob = os.path.join(blob_dir, f"{record.digest}.pickle")
        open(blob, "ab").write(b"garbage")
        # 2: drop an orphan blob nobody recorded
        open(os.path.join(blob_dir, "f" * 64 + ".pickle"), "wb").write(b"x")
        problems = "\n".join(store.verify())
        assert record.digest[:12] in problems
        assert "sha256" in problems
        assert "orphan" in problems

    def test_get_or_prepare_heals_corruption(self, store, prepared):
        record = store.put(prepared)
        blob = os.path.join(store.root, "blobs", f"{record.digest}.pickle")
        open(blob, "wb").write(b"not a pickle")
        healed, hit = store.get_or_prepare(gcd_module(), KEY, BITS, PIECES)
        assert not hit  # the corrupt artifact was evicted, not trusted
        assert healed.fingerprint() == record.digest
        assert store.verify() == []

    def test_wrong_blob_under_digest_is_refused(self, store, prepared, tmp_path):
        """A blob hand-moved under another digest fails the self-check."""
        record = store.put(prepared)
        other = prepare(gcd_module(), KEY, BITS, pieces=6)
        other_store = ArtifactStore(str(tmp_path / "other"))
        other_record = other_store.put(other)
        src = os.path.join(
            other_store.root, "blobs", f"{other_record.digest}.pickle"
        )
        dst = os.path.join(store.root, "blobs", f"{record.digest}.pickle")
        open(dst, "wb").write(open(src, "rb").read())
        # Manifest sha must also be forged for the mislabel to get as
        # far as the fingerprint check.
        manifest = json.load(open(os.path.join(store.root, "store.json")))
        for entry in manifest["artifacts"]:
            if entry["digest"] == record.digest:
                entry["sha256"] = other_record.sha256
                entry["size_bytes"] = other_record.size_bytes
        json.dump(manifest, open(os.path.join(store.root, "store.json"), "w"))
        store.refresh()
        with pytest.raises(StoreError, match="fingerprint"):
            store.load(record.digest)


class TestEvictAndResolve:
    def test_evict_removes_record_and_blob(self, store, prepared):
        record = store.put(prepared)
        assert store.evict(record.digest)
        assert record.digest not in store
        assert not os.path.exists(
            os.path.join(store.root, "blobs", f"{record.digest}.pickle")
        )
        assert not store.evict(record.digest)  # second evict is a no-op

    def test_resolve_prefix(self, store, prepared):
        digest = store.put(prepared).digest
        assert store.resolve(digest[:10]) == digest
        with pytest.raises(StoreError, match="no artifact"):
            store.resolve("0000")


class TestGetOrPrepare:
    def test_miss_then_hit_with_metrics(self, store):
        first, hit1 = store.get_or_prepare(gcd_module(), KEY, BITS, PIECES)
        second, hit2 = store.get_or_prepare(gcd_module(), KEY, BITS, PIECES)
        assert (hit1, hit2) == (False, True)
        assert first.fingerprint() == second.fingerprint()
        text = obs.get_registry().to_prometheus()
        assert 'repro_store_requests_total{outcome="miss"} 1' in text
        assert 'repro_store_requests_total{outcome="hit"} 1' in text


class TestColdWarmEquivalence:
    """store -> evict -> re-prepare -> run_batch must be byte-stable."""

    def test_cold_and_warm_batches_are_byte_identical(self, tmp_path):
        root = str(tmp_path / "store")
        specs = [
            CopySpec("acme", 0x0BAD, seed=3),
            CopySpec("globex", 0x1234, seed=9),
        ]

        def mint():
            store = ArtifactStore(root)
            artifact, hit = store.get_or_prepare(
                gcd_module(), KEY, BITS, PIECES
            )
            report = run_batch(artifact, specs, workers=1)
            assert report.all_ok
            return hit, [c.text for c in report.copies]

        cold_hit, cold = mint()
        warm_hit, warm = mint()
        assert (cold_hit, warm_hit) == (False, True)
        assert cold == warm
        # Evict, rebuild from scratch, and the bytes still match.
        store = ArtifactStore(root)
        store.evict(store.records()[0].digest)
        rebuilt_hit, rebuilt = mint()
        assert not rebuilt_hit
        assert rebuilt == cold


class TestPrepareCacheSpillThrough:
    def test_memory_miss_falls_back_to_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        digest = prepare_fingerprint(gcd_module(), KEY, BITS, PIECES)

        warmer = PrepareCache(store=store)
        warmer.get_or_prepare(gcd_module(), KEY, BITS, pieces=PIECES)
        assert digest in store  # the miss was persisted

        fresh = PrepareCache(store=store)  # empty memory, same store
        artifact, hit = fresh.get_or_prepare(
            gcd_module(), KEY, BITS, pieces=PIECES
        )
        assert hit
        assert fresh.store_hits == 1
        assert artifact.fingerprint() == digest

    def test_without_store_behaves_as_before(self):
        cache = PrepareCache()
        _, miss = cache.get_or_prepare(gcd_module(), KEY, BITS, pieces=PIECES)
        _, hit = cache.get_or_prepare(gcd_module(), KEY, BITS, pieces=PIECES)
        assert (miss, hit) == (False, True)
        assert cache.store_hits == 0
