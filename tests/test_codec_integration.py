"""Codec threading through the pipeline, store, service and campaign.

The codec layer is only useful if the spec survives every hop: manifest
-> prepare -> artifact store -> daemon -> client, and campaign config
-> cells -> report. These tests pin each hop, plus the two
compatibility contracts: pre-codec pickles rehydrate as GCRT, and
pre-codec fingerprints are unchanged for the default codec.
"""

import pickle

import pytest

from repro.bytecode_wm import WatermarkKey, recognize
from repro.campaign import CampaignCell, CampaignConfig, CampaignReport, run_campaign
from repro.codec import CodecError
from repro.pipeline import (
    CopySpec,
    ManifestError,
    PreparedProgram,
    embed_copy,
    parse_manifest,
    prepare,
    prepare_fingerprint,
)
from repro.serve import ArtifactStore, ServerConfig, ServerThread
from repro.serve.client import ServiceClient, ServiceError
from repro.vm import assemble
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"codec-int", inputs=[252, 105])
BITS = 16


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

def _doc(**extra):
    doc = {
        "module": "m.vm", "secret": "s3", "bits": 16,
        "copies": {"count": 2},
    }
    doc.update(extra)
    return doc


class TestManifestCodec:
    def test_defaults_to_gcrt(self):
        assert parse_manifest(_doc()).codec == "gcrt"

    def test_codec_is_normalized(self):
        assert parse_manifest(_doc(codec="hybrid")).codec == "hybrid-4"
        assert parse_manifest(_doc(codec="rs")).codec == "rs-8"

    def test_unknown_codec_is_a_manifest_error(self):
        with pytest.raises(ManifestError, match="unknown codec"):
            parse_manifest(_doc(codec="base64"))

    def test_non_string_codec_is_a_manifest_error(self):
        with pytest.raises(ManifestError, match="codec must be a string"):
            parse_manifest(_doc(codec=8))


# ---------------------------------------------------------------------------
# PreparedProgram: pickles and fingerprints
# ---------------------------------------------------------------------------

class TestPreparedProgramCompat:
    def test_pre_codec_pickle_state_defaults_to_gcrt(self):
        prepared = prepare(gcd_module(), KEY, BITS, 8)
        state = dict(prepared.__dict__)
        state.pop("codec")  # what a pre-codec pickle carries
        old = object.__new__(PreparedProgram)
        old.__setstate__(state)
        assert old.codec == "gcrt"
        assert old.fingerprint() == prepared.fingerprint()

    def test_pickle_round_trip_keeps_codec(self):
        prepared = prepare(gcd_module(), KEY, BITS, 8, codec="rs-8")
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.codec == "rs-8"
        assert clone.fingerprint() == prepared.fingerprint()

    def test_default_codec_fingerprint_is_pre_codec_stable(self):
        # gcrt must hash exactly as before the codec field existed, so
        # stored artifacts keep their addresses.
        base = prepare_fingerprint(gcd_module(), KEY, BITS, 8)
        assert prepare_fingerprint(
            gcd_module(), KEY, BITS, 8, codec="gcrt"
        ) == base
        assert prepare_fingerprint(
            gcd_module(), KEY, BITS, 8, codec="rs-8"
        ) != base

    def test_matches_distinguishes_codecs(self):
        prepared = prepare(gcd_module(), KEY, BITS, 8, codec="rs-8")
        assert prepared.matches(gcd_module(), KEY, BITS, 8, codec="rs-8")
        assert not prepared.matches(gcd_module(), KEY, BITS, 8)


# ---------------------------------------------------------------------------
# Batch embed with a codec override
# ---------------------------------------------------------------------------

class TestBatchCodec:
    def test_embed_copy_override_and_self_check(self):
        prepared = prepare(gcd_module(), KEY, BITS, 12)
        spec = CopySpec(copy_id="c0", watermark=0x0DEC, seed=3)
        result = embed_copy(prepared, spec, codec="rs-8")
        assert result.verified
        module = assemble(result.text)
        found = recognize(module, KEY, watermark_bits=BITS, codec="rs-8")
        assert (found.complete, found.value) == (True, 0x0DEC)
        # The default-codec decode must not see the RS copy.
        assert not recognize(module, KEY, watermark_bits=BITS).complete


# ---------------------------------------------------------------------------
# Artifact store
# ---------------------------------------------------------------------------

class TestStoreCodec:
    def test_record_carries_codec_and_reloads(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        record = store.put(
            prepare(gcd_module(), KEY, BITS, 8, codec="hybrid-4"),
            label="h",
        )
        assert record.codec == "hybrid-4"
        reloaded = ArtifactStore(str(tmp_path / "store"), create=False)
        assert reloaded.records()[0].codec == "hybrid-4"
        assert store.load(record.digest).codec == "hybrid-4"

    def test_get_or_prepare_normalizes_codec_addresses(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        first, hit = store.get_or_prepare(
            gcd_module(), KEY, BITS, pieces=12, codec="hybrid"
        )
        assert not hit
        again, hit = store.get_or_prepare(
            gcd_module(), KEY, BITS, pieces=12, codec="hybrid-4"
        )
        assert hit
        assert again.fingerprint() == first.fingerprint()
        assert again.codec == "hybrid-4"

    def test_codecs_get_distinct_addresses(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        gcrt, _ = store.get_or_prepare(gcd_module(), KEY, BITS, pieces=12)
        rs, _ = store.get_or_prepare(
            gcd_module(), KEY, BITS, pieces=12, codec="rs-8"
        )
        assert gcrt.fingerprint() != rs.fingerprint()


# ---------------------------------------------------------------------------
# Daemon + client
# ---------------------------------------------------------------------------

class TestServiceCodec:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("serve") / "store")
        store = ArtifactStore(root)
        record = store.put(prepare(gcd_module(), KEY, BITS, 12), label="gcd")
        config = ServerConfig(
            store_root=root, port=0, executor="thread", workers=2
        )
        with ServerThread(config) as server:
            address = (
                f"http://{server.service.config.host}:{server.service.port}"
            )
            yield ServiceClient(address), record.digest

    def test_per_request_codec_override_round_trip(self, service):
        client, digest = service
        minted = client.embed(
            digest, "acme", 0x0BED, seed=2, codec="rs-8"
        )
        assert minted["verified"] is True
        assert minted["codec"] == "rs-8"
        found = client.recognize(digest, minted["module"], codec="rs-8")
        assert found["complete"] is True
        assert found["value"] == 0x0BED

    def test_artifact_default_reported_without_override(self, service):
        client, digest = service
        minted = client.embed(digest, "plain", 0x0FAB, seed=4)
        assert minted["codec"] == "gcrt"

    def test_mismatched_codec_is_incomplete_not_error(self, service):
        client, digest = service
        minted = client.embed(digest, "mix", 0x0CAB, seed=5, codec="rs-8")
        found = client.recognize(digest, minted["module"])
        assert found["complete"] is False

    def test_unknown_codec_is_400(self, service):
        client, digest = service
        with pytest.raises(ServiceError) as err:
            client.embed(digest, "bad", 1, codec="base64")
        assert err.value.status == 400


# ---------------------------------------------------------------------------
# Campaign codec axis
# ---------------------------------------------------------------------------

class TestCampaignCodec:
    def test_config_validates_codecs_early(self):
        with pytest.raises(CodecError):
            CampaignConfig(codecs=("base64",))
        with pytest.raises(ValueError):
            CampaignConfig(codecs=())

    def test_cells_carry_the_codec_axis(self):
        report = run_campaign(CampaignConfig(
            seed=11, workloads=1, copies=2, bits=(16,),
            attacks=("locals-renumbering",), codecs=("gcrt", "rs-8"),
        ))
        assert report.codecs == ["gcrt", "rs-8"]
        seen = {cell.codec for cell in report.cells}
        assert seen == {"gcrt", "rs-8"}
        rates = report.by_codec()
        assert set(rates) == {"gcrt", "rs-8"}
        # Serialization round-trips the axis.
        clone = CampaignReport.from_dict(report.to_dict())
        assert clone.codecs == report.codecs
        assert [c.codec for c in clone.cells] == [
            c.codec for c in report.cells
        ]
        assert "codecs=" in report.summary()

    def test_pre_codec_cell_documents_load_as_gcrt(self):
        cell = CampaignCell.from_dict({
            "workload": "w0", "bits": 16, "substrate": "bytecode",
            "attack": "noop-insertion", "intensity_index": 0,
            "intensity": 1.0, "copies": 1, "recovered": 1,
        })
        assert cell.codec == "gcrt"
        assert cell.key()[3] == "gcrt"
