"""Tests for watermark splitting and reconstruction (Section 3.2/3.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import EmbeddingError
from repro.core.primes import choose_moduli
from repro.core.splitting import (
    coverage_first_pair_order,
    covered_indices,
    is_full_coverage,
    reconstruct,
    split,
)

MODULI = [2, 3, 5]


class TestPairOrder:
    def test_all_pairs_present(self):
        order = coverage_first_pair_order(5)
        assert sorted(order) == [(i, j) for i in range(5) for j in range(i + 1, 5)]

    def test_early_coverage(self):
        r = 7
        order = coverage_first_pair_order(r)
        covered = set()
        for i, j in order[: r - 1]:
            covered.add(i)
            covered.add(j)
        assert covered == set(range(r))

    def test_shuffled_still_complete(self):
        order = coverage_first_pair_order(6, random.Random(42))
        assert sorted(order) == [(i, j) for i in range(6) for j in range(i + 1, 6)]


class TestSplit:
    def test_paper_figure3(self):
        # W = 17 over p = (2, 3, 5) gives residues 5 mod 6, 7 mod 10, 2 mod 15.
        stmts = split(17, MODULI, piece_count=3)
        residues = {(s.i, s.j): s.x for s in stmts}
        assert residues[(0, 1)] == 17 % 6
        assert all(s.x == 17 % s.modulus(MODULI) for s in stmts)

    def test_rejects_oversized_watermark(self):
        with pytest.raises(EmbeddingError):
            split(30, MODULI, piece_count=3)

    def test_rejects_negative(self):
        with pytest.raises(EmbeddingError):
            split(-1, MODULI, piece_count=3)

    def test_rejects_undersized_piece_count(self):
        with pytest.raises(EmbeddingError):
            split(17, MODULI, piece_count=1)

    def test_duplicates_for_redundancy(self):
        stmts = split(17, MODULI, piece_count=10)
        assert len(stmts) == 10
        # Only 3 distinct pairs exist, so duplicates must appear.
        assert len(set(stmts)) == 3

    def test_coverage_with_minimal_pieces(self):
        stmts = split(17, MODULI, piece_count=2)
        assert is_full_coverage(stmts, 3)

    @given(st.integers(0, 29), st.integers(2, 12))
    def test_roundtrip_small(self, w, pieces):
        stmts = split(w, MODULI, piece_count=pieces)
        combined = reconstruct(stmts, MODULI)
        assert combined.value == w
        assert combined.modulus == 30

    @settings(max_examples=25, deadline=None)
    @given(st.integers(64, 512), st.data())
    def test_roundtrip_realistic_widths(self, bits, data):
        moduli = choose_moduli(bits)
        w = data.draw(st.integers(0, 2**bits - 1))
        stmts = split(w, moduli, piece_count=len(moduli) + 3)
        assert is_full_coverage(stmts, len(moduli))
        assert reconstruct(stmts, moduli).value == w


class TestPartialReconstruction:
    def test_partial_coverage_gives_partial_modulus(self):
        stmts = [s for s in split(17, MODULI, piece_count=3)
                 if (s.i, s.j) == (0, 1)]
        assert stmts, "splitting always emits some (p1, p2) statement"
        partial = reconstruct(stmts, MODULI)
        assert 17 % partial.modulus == partial.value
        assert partial.modulus == 6

    def test_covered_indices(self):
        stmts = split(17, MODULI, piece_count=3)
        assert covered_indices(stmts) == {0, 1, 2}
