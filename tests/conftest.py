"""Shared test plumbing.

The serving daemon installs an ambient telemetry hub when none exists
(so its workers and the store/circuit layers can emit without extra
wiring). Left in place it would leak journal state between tests, so
every test starts and ends with the hub cleared — the few tests that
want one install it themselves.
"""

import pytest

from repro.obs import journal


@pytest.fixture(autouse=True)
def _isolated_hub():
    journal.set_hub(None)
    yield
    journal.set_hub(None)
