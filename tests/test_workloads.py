"""Tests for the benchmark workloads themselves.

The evaluation's validity rests on the workloads having the profiles
the paper's programs had: CaffeineMark hot and tiny, Jess big and
cold, SPEC kernels with hot loops plus cold one-shot paths. These
tests pin those properties so a workload edit cannot silently distort
the figures.
"""

import pytest

from repro.native import run_image
from repro.vm import SiteKey, run_module, verify_module
from repro.workloads import (
    CAFFEINEMARK_INPUT,
    JESS_INPUT,
    caffeinemark_module,
    collatz_module,
    gcd_module,
    jess_module,
)
from repro.workloads.spec import (
    REF_INPUT,
    SPEC_PROGRAMS,
    TRAIN_INPUT,
    spec_native,
    spec_vm,
)


class TestSimplePrograms:
    def test_gcd(self):
        assert run_module(gcd_module(), [25, 10]).output == [5]
        assert run_module(gcd_module(), [1071, 462]).output == [21]

    def test_collatz(self):
        assert run_module(collatz_module(), [27]).output == [111]
        assert run_module(collatz_module(), [1]).output == [0]

    def test_all_verify(self):
        for factory in (gcd_module, collatz_module, caffeinemark_module,
                        jess_module):
            verify_module(factory())


class TestCaffeineMarkProfile:
    def test_small_and_hot(self):
        module = caffeinemark_module()
        result = run_module(module, CAFFEINEMARK_INPUT, trace_mode="full")
        size = module.byte_size()
        assert size < 3000, "CaffeineMark-like must stay tiny"
        # Hot: steps vastly exceed static size.
        assert result.steps > 40 * module.instruction_count()

    def test_deterministic(self):
        a = run_module(caffeinemark_module(), CAFFEINEMARK_INPUT)
        b = run_module(caffeinemark_module(), CAFFEINEMARK_INPUT)
        assert a.output == b.output and a.steps == b.steps

    def test_scale_input_scales_work(self):
        small = run_module(caffeinemark_module(), [5]).steps
        big = run_module(caffeinemark_module(), [20]).steps
        assert big > 2 * small


class TestJessProfile:
    def test_big_and_cold(self):
        module = jess_module()
        cm = caffeinemark_module()
        assert module.byte_size() > 8 * cm.byte_size(), \
            "Jess-like must be an order of magnitude larger"
        result = run_module(module, JESS_INPUT, trace_mode="full")
        counts = result.trace.site_counts()
        executed_sites = len(counts)
        # Cold: a large fraction of static sites never executes.
        total_sites = sum(
            1 + sum(1 for i in fn.code if i.is_label)
            for fn in module.functions.values()
        )
        assert executed_sites < total_sites / 2

    def test_most_rules_never_fire(self):
        module = jess_module()
        result = run_module(module, JESS_INPUT, trace_mode="full")
        counts = result.trace.site_counts()
        fired_rules = {
            k.function for k in counts
            if k.function.startswith("rule_") and k.site != "<entry>"
        }
        # Rules are *called* every agenda cycle (entry sites execute),
        # but their bodies beyond the first guard mostly don't.
        assert len(fired_rules) < 24

    def test_burn_parameter(self):
        quick = run_module(jess_module(burn=100), JESS_INPUT).steps
        slow = run_module(jess_module(burn=20000), JESS_INPUT).steps
        assert slow > quick + 15000

    def test_rule_count_parameter(self):
        small = jess_module(rule_count=12).byte_size()
        large = jess_module(rule_count=72).byte_size()
        assert large > 2 * small


@pytest.mark.slow
@pytest.mark.parametrize("name", SPEC_PROGRAMS)
class TestSpecKernels:
    def test_substrates_agree(self, name):
        native = run_image(spec_native(name), TRAIN_INPUT).output
        vm = run_module(spec_vm(name), TRAIN_INPUT).output
        assert native == vm and native

    def test_deterministic(self, name):
        a = run_image(spec_native(name), REF_INPUT)
        b = run_image(spec_native(name), REF_INPUT)
        assert a.output == b.output and a.steps == b.steps

    def test_inputs_differ(self, name):
        train = run_image(spec_native(name), TRAIN_INPUT).output
        ref = run_image(spec_native(name), REF_INPUT).output
        assert train != ref, "train and ref must exercise different data"

    def test_has_cold_begin_edges(self, name):
        """The native embedder needs executed-but-cold direct jumps."""
        from repro.native import lift, profile_image
        from repro.native.isa import Label
        image = spec_native(name)
        profile = profile_image(image, TRAIN_INPUT)
        prog = lift(image)
        cold_jmps = 0
        for addr, idx in prog.index_of_addr.items():
            item = prog.items[idx]
            if isinstance(item, tuple) or item.mnemonic != "jmp":
                continue
            if not isinstance(item.operands[0], Label):
                continue
            if 1 <= profile.count(addr) <= 16:
                cold_jmps += 1
        assert cold_jmps >= 2, f"{name} lacks cold begin/tamper edges"

    def test_realistic_size(self, name):
        image = spec_native(name)
        assert 25_000 < image.file_size() < 60_000


class TestColdLibrary:
    def test_exactly_one_cold_routine_warm(self):
        """The dispatcher warms one library routine per run; TRAIN and
        REF deliberately warm the same one (embedding correctness)."""
        from repro.workloads.spec import SPEC_SOURCES
        src = SPEC_SOURCES["mcf"]
        assert "cold_dispatch" in src
        sel_train = (TRAIN_INPUT[0] * 7 + TRAIN_INPUT[1]) % 110
        sel_ref = (REF_INPUT[0] * 7 + REF_INPUT[1]) % 110
        assert sel_train == sel_ref

    def test_cold_functions_compile_and_run(self):
        from repro.workloads.spec import _cold_library
        from repro.lang import compile_source
        src = _cold_library(8) + """
fn main() {
    for (var sel = 0; sel < 8; sel = sel + 1) {
        print(cold_dispatch(sel, 1234));
    }
    return 0;
}
"""
        out = run_module(compile_source(src)).output
        assert len(out) == 8
