"""Property tests for telemetry serialization (`repro.obs`).

Hypothesis drives the encode/decode contracts the journal depends on:
``Span`` and ``Event`` survive ``to_dict``/``from_dict`` and a real
JSON hop for arbitrary contents, and journal reads stay correct under
a torn final line regardless of where the tear lands.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.journal import (
    Event,
    HubConfig,
    TelemetryHub,
    read_events,
    read_journal,
)
from repro.obs.spans import Span

# JSON-safe attribute values: what layers actually put on events and
# spans (strings, bools, ints, finite floats, None).
_ATTR_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-2**53, 2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
)
_ATTRS = st.dictionaries(
    st.text(min_size=1, max_size=20), _ATTR_VALUES, max_size=5
)
_IDS = st.text(
    alphabet="0123456789abcdef", min_size=1, max_size=16
)

_SPANS = st.builds(
    Span,
    name=st.text(min_size=1, max_size=40),
    trace_id=_IDS,
    span_id=_IDS,
    parent_id=st.one_of(st.none(), _IDS),
    start_unix=st.floats(0, 2**31, allow_nan=False),
    duration=st.floats(0, 10**6, allow_nan=False),
    status=st.sampled_from(["ok", "error", "cancelled"]),
    attributes=_ATTRS,
)

_EVENTS = st.builds(
    Event,
    kind=st.text(min_size=1, max_size=30),
    name=st.text(max_size=40),
    unix=st.floats(0, 2**31, allow_nan=False),
    attrs=_ATTRS,
    trace_id=st.one_of(st.none(), _IDS),
    span_id=st.one_of(st.none(), _IDS),
)


@given(span=_SPANS)
@settings(max_examples=40, deadline=None)
def test_span_round_trips_through_json(span):
    wire = json.loads(json.dumps(span.to_dict()))
    assert Span.from_dict(wire) == span


@given(event=_EVENTS)
@settings(max_examples=40, deadline=None)
def test_event_round_trips_through_json(event):
    wire = json.loads(json.dumps(event.to_dict()))
    assert Event.from_dict(wire) == event
    assert wire["rec"] == "event"


@given(events=st.lists(_EVENTS, max_size=8), cut=st.integers(1, 200))
@settings(max_examples=30, deadline=None)
def test_journal_survives_a_torn_final_line(tmp_path_factory, events, cut):
    """However many bytes the dying writer managed to flush, every
    fully written record reads back and the torn tail never raises."""
    tmp = tmp_path_factory.mktemp("torn")
    path = str(tmp / "journal.jsonl")
    hub = TelemetryHub(HubConfig(journal_path=path))
    for event in events:
        hub.emit(event.kind, event.name, **event.attrs)
    hub.close()

    with open(path, "a") as fp:
        torn = json.dumps({"rec": "event", "kind": "torn",
                           "name": "x" * 80, "unix": 0.0, "attrs": {}})
        fp.write(torn[:cut])

    recovered = read_events(path)
    whole = [e for e in recovered if e.kind != "torn"]
    assert len(whole) == len(events)
    assert [e.kind for e in whole] == [e.kind for e in events]
    # And the raw reader agrees: no parse error escapes.
    assert len(list(read_journal(path))) >= len(events)


@given(events=st.lists(_EVENTS, min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_hub_ring_matches_journal(tmp_path_factory, events):
    tmp = tmp_path_factory.mktemp("ring")
    path = str(tmp / "journal.jsonl")
    hub = TelemetryHub(HubConfig(journal_path=path))
    for event in events:
        hub.emit(event.kind, event.name, **event.attrs)
    hub.close()
    ring = hub.tail(limit=len(events))
    journaled = read_events(path)
    assert [(e.kind, e.name, e.attrs) for e in ring] == [
        (e.kind, e.name, e.attrs) for e in journaled
    ]
