"""Tests for the five native attacks and the §5.2.2 resilience table."""

import pytest

from repro.attacks.native import (
    bypass_branch_function,
    double_watermark,
    insert_noops,
    invert_branch_senses,
    observe_call_targets,
    reroute_branch_function,
    run_native_attack_suite,
)
from repro.lang.codegen_native import compile_source_native
from repro.native import MachineFault, run_image
from repro.native_wm import embed_native, extract_native

HOST_SRC = """
fn hot(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) { acc = acc + i * i; }
    return acc;
}
fn late_a(x) {
    var y = 0;
    if (x % 2 == 0) { y = x + 1; } else { y = x - 1; }
    return y;
}
fn late_b(x) {
    var y = 0;
    if (x > 10) { y = x * 3; } else { y = x * 5; }
    return y;
}
fn late_c(x) {
    var y = 0;
    if (x != 7) { y = 1; } else { y = 2; }
    return y;
}
fn main() {
    var n = input();
    print(hot(n));
    if (n > 2) { print(n * 2); } else { print(n); }
    print(late_a(n));
    print(late_b(n));
    print(late_c(n));
    return 0;
}
"""

KEY = [50]


@pytest.fixture(scope="module")
def host():
    return compile_source_native(HOST_SRC)


@pytest.fixture(scope="module")
def embedded(host):
    return embed_native(host, watermark=0xACE, width=12, inputs=KEY)


def broken(image, inputs, expected):
    try:
        return run_image(image, inputs, max_steps=5_000_000).output != expected
    except MachineFault:
        return True


class TestAttacksOnUnwatermarkedBinaries:
    """Sanity: the transformations themselves are semantics-preserving
    when there is no watermark to break."""

    def test_noop_insertion(self, host):
        want = run_image(host, KEY).output
        attacked = insert_noops(host, 25, at_start=True)
        assert run_image(attacked, KEY).output == want

    def test_sense_inversion(self, host):
        want = run_image(host, KEY).output
        attacked = invert_branch_senses(host)
        assert run_image(attacked, KEY).output == want
        for probe in ([3], [11]):
            assert run_image(attacked, probe).output == \
                run_image(host, probe).output


class TestAttacksOnWatermarkedBinaries:
    def test_single_noop_breaks(self, embedded):
        want = run_image(embedded.image, KEY).output
        attacked = insert_noops(embedded.image, 1, at_start=True)
        assert broken(attacked, KEY, want)

    def test_sense_inversion_breaks(self, embedded):
        want = run_image(embedded.image, KEY).output
        attacked = invert_branch_senses(embedded.image)
        assert broken(attacked, KEY, want)

    def test_double_watermark_breaks(self, embedded):
        want = run_image(embedded.image, KEY).output
        attacked = double_watermark(embedded.image, 0x123, 12, KEY)
        assert broken(attacked, KEY, want)

    def test_bypass_breaks_tamper_proofed(self, embedded):
        assert embedded.tamper_jumps, "fixture must have lockdown cells"
        want = run_image(embedded.image, KEY).output
        attacked = bypass_branch_function(
            embedded.image, embedded.bf_entry, KEY
        )
        assert broken(attacked, KEY, want)

    def test_bypass_succeeds_without_tamper_proofing(self, host):
        """Ablation: tamper-proofing is what defeats the subtractive
        attack — without it the bypass yields a working, unwatermarked
        program."""
        emb = embed_native(host, 0xACE, 12, KEY, tamper_proof=False)
        assert not emb.tamper_jumps
        want = run_image(emb.image, KEY).output
        attacked = bypass_branch_function(emb.image, emb.bf_entry, KEY)
        assert run_image(attacked, KEY).output == want  # program fine
        res = extract_native(attacked, 12, emb.begin, emb.end, KEY,
                             tracer="smart", bf_entry=emb.bf_entry)
        assert res.watermark != 0xACE  # but the mark is gone

    def test_reroute_preserves_program(self, embedded):
        want = run_image(embedded.image, KEY).output
        attacked = reroute_branch_function(
            embedded.image, embedded.bf_entry, KEY
        )
        assert run_image(attacked, KEY).output == want

    def test_reroute_defeats_simple_tracer_only(self, embedded):
        attacked = reroute_branch_function(
            embedded.image, embedded.bf_entry, KEY
        )
        simple = extract_native(
            attacked, embedded.width, embedded.begin, embedded.end, KEY,
            tracer="simple", bf_entry=embedded.bf_entry,
        )
        smart = extract_native(
            attacked, embedded.width, embedded.begin, embedded.end, KEY,
            tracer="smart", bf_entry=embedded.bf_entry,
        )
        assert simple.watermark != embedded.watermark
        assert smart.watermark == embedded.watermark

    def test_observe_call_targets_learns_chain(self, embedded):
        pairs = observe_call_targets(embedded.image, embedded.bf_entry, KEY)
        sources = [a for a, _b in pairs]
        for call_addr in embedded.call_addresses:
            assert call_addr in sources


class TestResilienceTable:
    def test_matches_paper(self, embedded):
        outcomes = {
            o.name: o for o in run_native_attack_suite(embedded, KEY)
        }
        # Attacks 1-4 break the program.
        for name in ("1-noop-insertion", "2-branch-sense-inversion",
                     "3-double-watermarking", "4-bypass-branch-function"):
            assert not outcomes[name].program_ok, name
        # Attack 5 keeps it alive and splits the tracers.
        reroute = outcomes["5-reroute-branch-function"]
        assert reroute.program_ok
        assert not reroute.extracted_simple
        assert reroute.extracted_smart
