"""Tests for the bytecode attack suite and the resilience claims.

The key invariants from Section 3.1/5.1.2:

* noop insertion, block reordering, sense inversion, splitting,
  renumbering, inlining: semantics preserved AND watermark survives;
* branch insertion: semantics preserved, watermark degrades with rate;
* class encryption: blocks instrumentation-based tracing but not
  JVM-level tracing.
"""

import random

import pytest

from repro.attacks.bytecode import (
    SealedAccessError,
    branch_increase_fraction,
    copy_blocks,
    evaluate_attack,
    inline_random_calls,
    insert_branches,
    insert_noops,
    instrument_for_tracing,
    invert_branch_senses,
    jvm_level_trace,
    renumber_locals,
    reorder_blocks,
    run_attack_suite,
    seal_module,
    split_blocks,
)
from repro.bytecode_wm import WatermarkKey, embed, recognize, recognize_bits
from repro.core.bitstring import decode_bits
from repro.vm import run_module, verify_module
from repro.workloads import collatz_module, gcd_module

KEY = WatermarkKey(secret=b"attacks", inputs=[27])
WM = 0xFACE


@pytest.fixture(scope="module")
def embedded():
    return embed(collatz_module(), WM, KEY, watermark_bits=16, pieces=8)


def trace_bits(module, inputs):
    result = run_module(module, inputs, trace_mode="branch")
    return decode_bits(result.trace.branch_pairs())


class TestSemanticPreservation:
    """Every attack must produce a working, verifiable program."""

    @pytest.mark.parametrize("attack", [
        lambda m, r: insert_noops(m, 500, r),
        lambda m, r: insert_branches(m, 50, r),
        lambda m, r: invert_branch_senses(m, 1.0, r),
        lambda m, r: reorder_blocks(m, r),
        lambda m, r: split_blocks(m, 30, r),
        lambda m, r: copy_blocks(m, 10, r),
        lambda m, r: inline_random_calls(m, 3, r),
        lambda m, r: renumber_locals(m, r),
    ])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_attacked_program_works(self, attack, seed, embedded):
        rng = random.Random(seed)
        attacked = attack(embedded.module, rng)
        verify_module(attacked)
        for inputs in ([27], [7], [1], [97]):
            assert run_module(attacked, inputs).output == \
                run_module(embedded.module, inputs).output


class TestBitstringInvariance:
    """The decoded bit-string itself is unchanged by static layout
    attacks (the Section 3.1 definition's whole point)."""

    def _bits(self, module):
        return trace_bits(module, [27])

    def test_noop_invariance(self, embedded):
        attacked = insert_noops(embedded.module, 1000, random.Random(1))
        assert self._bits(attacked) == self._bits(embedded.module)

    def test_sense_inversion_invariance(self, embedded):
        attacked = invert_branch_senses(embedded.module, 1.0, random.Random(1))
        assert self._bits(attacked) == self._bits(embedded.module)

    def test_reordering_invariance(self, embedded):
        attacked = reorder_blocks(embedded.module, random.Random(1))
        assert self._bits(attacked) == self._bits(embedded.module)

    def test_splitting_invariance(self, embedded):
        attacked = split_blocks(embedded.module, 40, random.Random(1))
        assert self._bits(attacked) == self._bits(embedded.module)

    def test_renumbering_invariance(self, embedded):
        attacked = renumber_locals(embedded.module, random.Random(1))
        assert self._bits(attacked) == self._bits(embedded.module)

    def test_branch_insertion_changes_bits(self, embedded):
        attacked = insert_branches(embedded.module, 30, random.Random(1))
        assert self._bits(attacked) != self._bits(embedded.module)


class TestWatermarkSurvival:
    def _recognizes(self, module):
        found = recognize(module, KEY, watermark_bits=16)
        return found.complete and found.value == WM

    @pytest.mark.parametrize("attack_name", [
        "noop", "inversion", "reorder", "split", "copy", "inline",
        "renumber", "stacked",
    ])
    def test_survives(self, attack_name, embedded):
        rng = random.Random(7)
        attacks = {
            "noop": lambda m: insert_noops(m, 800, rng),
            "inversion": lambda m: invert_branch_senses(m, 1.0, rng),
            "reorder": lambda m: reorder_blocks(m, rng),
            "split": lambda m: split_blocks(m, 50, rng),
            "copy": lambda m: copy_blocks(m, 15, rng),
            "inline": lambda m: inline_random_calls(m, 4, rng),
            "renumber": lambda m: renumber_locals(m, rng),
            "stacked": lambda m: reorder_blocks(
                invert_branch_senses(insert_noops(m, 300, rng), 1.0, rng), rng
            ),
        }
        attacked = attacks[attack_name](embedded.module)
        assert self._recognizes(attacked), attack_name

    def test_heavy_branch_insertion_destroys(self, embedded):
        attacked = insert_branches(embedded.module, 300, random.Random(3))
        assert not self._recognizes(attacked)

    @pytest.mark.slow
    def test_survival_decreases_with_insertion_rate(self, embedded):
        """More inserted branches -> fewer surviving recognitions
        (Figure 8(c) mechanism), tested across seeds."""
        def survival(count):
            hits = 0
            for seed in range(6):
                attacked = insert_branches(
                    embedded.module, count, random.Random(seed)
                )
                hits += self._recognizes(attacked)
            return hits
        assert survival(2) >= survival(120)

    def test_branch_increase_fraction_metric(self, embedded):
        attacked = insert_branches(embedded.module, 25, random.Random(0))
        frac = branch_increase_fraction(embedded.module, attacked)
        assert frac > 0
        base_branches = sum(
            1 for fn in embedded.module.functions.values()
            for i in fn.real_instructions() if i.is_conditional
        )
        assert frac == pytest.approx(25 / base_branches)


class TestAttackHarness:
    def test_outcome_fields(self, embedded):
        attacked = insert_noops(embedded.module, 10, random.Random(0))
        outcome = evaluate_attack("noop", embedded, KEY, attacked,
                                  probe_inputs=[[7]])
        assert outcome.verifies and outcome.program_ok
        assert outcome.watermark_found
        assert outcome.recovered == WM
        assert not outcome.attack_succeeded

    @pytest.mark.slow
    def test_suite_runs_standard_battery(self, embedded):
        outcomes = run_attack_suite(embedded, KEY, probe_inputs=[[7]])
        names = {o.name for o in outcomes}
        assert "branch-sense-inversion" in names
        assert all(o.program_ok for o in outcomes)
        layout = [o for o in outcomes if "insertion" not in o.name
                  or o.name.startswith("noop")]
        assert all(o.watermark_found for o in layout)


class TestClassEncryption:
    def test_instrumentation_blocked(self, embedded):
        sealed = seal_module(embedded.module)
        with pytest.raises(SealedAccessError):
            instrument_for_tracing(sealed)

    def test_payload_is_ciphertext(self, embedded):
        sealed = seal_module(embedded.module)
        assert b".func" not in sealed.static_bytes()

    def test_loader_roundtrip(self, embedded):
        sealed = seal_module(embedded.module)
        module = sealed.load()
        assert run_module(module, [27]).output == \
            run_module(embedded.module, [27]).output

    def test_jvm_level_tracing_survives(self, embedded):
        sealed = seal_module(embedded.module)
        result = jvm_level_trace(sealed, KEY.inputs)
        bits = decode_bits(result.trace.branch_pairs())
        found = recognize_bits(bits, KEY, watermark_bits=16)
        assert found.complete and found.value == WM
