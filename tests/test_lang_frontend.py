"""Tests for the wee lexer, parser, and semantic analysis."""

import pytest

from repro.lang import (
    LexError,
    ParseError,
    SemanticError,
    analyze,
    parse,
    tokenize,
)
from repro.lang import ast_nodes as A


class TestLexer:
    def test_kinds(self):
        toks = tokenize("fn main() { var x = 0x1F + 2; } // c")
        kinds = [(t.kind, t.text) for t in toks]
        assert ("keyword", "fn") in kinds
        assert ("name", "main") in kinds
        assert ("int", "0x1F") in kinds
        assert ("int", "2") in kinds
        assert kinds[-1] == ("eof", "")

    def test_comments_ignored(self):
        toks = tokenize("// just a comment\n")
        assert [t.kind for t in toks] == ["eof"]

    def test_two_char_symbols(self):
        toks = tokenize("<= >= == != << >> && ||")
        texts = [t.text for t in toks if t.kind == "symbol"]
        assert texts == ["<=", ">=", "==", "!=", "<<", ">>", "&&", "||"]

    def test_line_and_column_tracking(self):
        toks = tokenize("fn\n  main")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("fn main() { @ }")

    def test_bad_hex(self):
        with pytest.raises(LexError, match="bad hex"):
            tokenize("0x")


class TestParser:
    def test_function_structure(self):
        prog = parse("fn add(a, b) { return a + b; } fn main() { return 0; }")
        assert [f.name for f in prog.functions] == ["add", "main"]
        assert prog.functions[0].params == ["a", "b"]

    def test_globals(self):
        prog = parse("global cache; fn main() { return 0; }")
        assert [g.name for g in prog.globals] == ["cache"]

    def test_precedence(self):
        prog = parse("fn main() { var x = 1 + 2 * 3; return x; }")
        init = prog.functions[0].body[0].init
        assert isinstance(init, A.Binary) and init.op == "+"
        assert isinstance(init.right, A.Binary) and init.right.op == "*"

    def test_comparison_binds_looser_than_bitor(self):
        prog = parse("fn main() { var x = 1 | 2 == 3; return x; }")
        init = prog.functions[0].body[0].init
        assert init.op == "=="
        assert isinstance(init.left, A.Binary) and init.left.op == "|"

    def test_else_if_chain(self):
        prog = parse("""
            fn main() {
                if (1) { return 1; } else if (2) { return 2; }
                else { return 3; }
            }
        """)
        top = prog.functions[0].body[0]
        assert isinstance(top, A.If)
        assert isinstance(top.otherwise[0], A.If)

    def test_for_loop_parts(self):
        prog = parse("fn main() { for (var i = 0; i < 3; i = i + 1) {} return 0; }")
        loop = prog.functions[0].body[0]
        assert isinstance(loop, A.For)
        assert isinstance(loop.init, A.VarDecl)
        assert isinstance(loop.cond, A.Binary)
        assert isinstance(loop.step, A.Assign)

    def test_for_loop_empty_parts(self):
        prog = parse("fn main() { for (;;) { break; } return 0; }")
        loop = prog.functions[0].body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_array_expressions(self):
        prog = parse("fn main() { var a = new(10); a[0] = len(a); return a[0]; }")
        body = prog.functions[0].body
        assert isinstance(body[0].init, A.NewArray)
        assert isinstance(body[1].target, A.Index)

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse("fn main() { 1 + 2 = 3; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("fn main() { return 0 }")

    def test_top_level_garbage(self):
        with pytest.raises(ParseError, match="top level"):
            parse("var x = 3;")


class TestAnalysis:
    def ok(self, src):
        return analyze(parse(src))

    def test_frame_allocation(self):
        info = self.ok("fn f(a, b) { var c = 0; return c; } fn main() { return 0; }")
        assert info.functions["f"].frame == {"a": 0, "b": 1, "c": 2}

    def test_global_indices(self):
        info = self.ok("global g; global h; fn main() { g = 1; return h; }")
        assert info.globals == {"g": 0, "h": 1}

    def test_requires_main(self):
        with pytest.raises(SemanticError, match="must define fn main"):
            self.ok("fn helper() { return 0; }")

    def test_main_takes_no_params(self):
        with pytest.raises(SemanticError, match="no parameters"):
            self.ok("fn main(x) { return 0; }")

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="undeclared variable"):
            self.ok("fn main() { return ghost; }")

    def test_undeclared_assignment(self):
        with pytest.raises(SemanticError, match="undeclared variable"):
            self.ok("fn main() { ghost = 3; return 0; }")

    def test_redeclaration(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            self.ok("fn main() { var x = 1; var x = 2; return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="duplicate function"):
            self.ok("fn f() { return 0; } fn f() { return 1; } fn main() { return 0; }")

    def test_duplicate_param(self):
        with pytest.raises(SemanticError, match="duplicate parameter"):
            self.ok("fn f(a, a) { return 0; } fn main() { return 0; }")

    def test_unknown_call(self):
        with pytest.raises(SemanticError, match="unknown function"):
            self.ok("fn main() { return ghost(); }")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="expects 2 args"):
            self.ok("fn f(a, b) { return 0; } fn main() { return f(1); }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break outside"):
            self.ok("fn main() { break; }")

    def test_continue_inside_loop_ok(self):
        self.ok("fn main() { while (0) { continue; } return 0; }")

    def test_global_function_name_clash(self):
        with pytest.raises(SemanticError, match="both a global and a function"):
            self.ok("global f; fn f() { return 0; } fn main() { return 0; }")


class TestLexicalScoping:
    """Wee scoping is lexical: blocks shadow, loop variables die with
    their loop, same-scope redeclaration is an error."""

    def run_src(self, src, inputs=()):
        from repro.lang import compile_source
        from repro.vm import run_module
        return run_module(compile_source(src), inputs).output

    def test_loop_variable_reuse(self):
        out = self.run_src("""
        fn main() {
            var total = 0;
            for (var i = 0; i < 3; i = i + 1) { total = total + i; }
            for (var i = 0; i < 3; i = i + 1) { total = total + i * 10; }
            print(total);
            return 0;
        }
        """)
        assert out == [3 + 30]

    def test_block_shadowing(self):
        out = self.run_src("""
        fn main() {
            var x = 1;
            if (x == 1) {
                var x = 2;
                print(x);
            }
            print(x);
            return 0;
        }
        """)
        assert out == [2, 1]

    def test_shadowed_writes_stay_inner(self):
        out = self.run_src("""
        fn main() {
            var x = 5;
            while (x == 5) {
                var x = 0;
                x = 99;
                break;
            }
            print(x);
            return 0;
        }
        """)
        assert out == [5]

    def test_param_shadowing(self):
        out = self.run_src("""
        fn f(a) {
            if (a > 0) {
                var a = 42;
                print(a);
            }
            return a;
        }
        fn main() { print(f(7)); return 0; }
        """)
        assert out == [42, 7]

    def test_loop_variable_not_visible_after(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze(parse("""
            fn main() {
                for (var i = 0; i < 3; i = i + 1) { }
                print(i);
                return 0;
            }
            """))

    def test_block_variable_not_visible_after(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze(parse("""
            fn main() {
                if (1) { var t = 3; }
                print(t);
                return 0;
            }
            """))

    def test_same_scope_redeclaration_still_rejected(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            analyze(parse("""
            fn main() {
                if (1) { var t = 3; var t = 4; }
                return 0;
            }
            """))

    def test_global_shadowed_by_local(self):
        out = self.run_src("""
        global g;
        fn main() {
            g = 7;
            if (1) {
                var g = 1;
                print(g);
            }
            print(g);
            return 0;
        }
        """)
        assert out == [1, 7]

    def test_native_agrees_on_shadowing(self):
        from repro.lang.codegen_native import compile_source_native
        from repro.native import run_image
        src = """
        fn main() {
            var x = 1;
            for (var k = 0; k < 2; k = k + 1) {
                var x = 10;
                x = x + k;
                print(x);
            }
            print(x);
            return 0;
        }
        """
        vm = self.run_src(src)
        native = run_image(compile_source_native(src)).output
        assert vm == native == [10, 11, 1]
