"""Tests for the observability subsystem: spans, metrics, timing,
VM dispatch profiles and recognition diagnostics."""

import io
import json
import pickle

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.recognition import RecognitionReport
from repro.obs.spans import Span, Tracer, attach, render_span_tree
from repro.obs.timing import StageAccumulator
from repro.obs.vmprofile import DispatchProfile, profile_run
from repro.vm.compiler import NUM_OPCODES, OP_FUSED_BASE, opcode_name, slot_width
from repro.vm.interpreter import run_module
from repro.workloads import gcd_module


@pytest.fixture(autouse=True)
def _isolated_ambient():
    """Every test sees a fresh ambient tracer and registry."""
    previous = obs.set_registry(MetricsRegistry())
    obs.disable_tracing()
    yield
    obs.set_registry(previous)
    obs.disable_tracing()


class TestSpans:
    def test_nesting_parents_under_ambient(self):
        tracer = obs.enable_tracing()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert [sp.name for sp in tracer.finished] == ["inner", "outer"]

    def test_span_records_duration_and_attributes(self):
        obs.enable_tracing()
        with obs.span("work", copies=3) as sp:
            sp.set(extra="yes")
        assert sp.duration >= 0.0
        assert sp.attributes == {"copies": 3, "extra": "yes"}

    def test_exception_marks_error_status(self):
        tracer = obs.enable_tracing()
        with pytest.raises(ValueError):
            with obs.span("explodes"):
                raise ValueError("boom")
        (sp,) = tracer.finished
        assert sp.status == "error"

    def test_null_tracer_is_inert(self):
        assert not obs.get_tracer().enabled
        with obs.span("ignored") as sp:
            sp.set(anything="goes")  # must not raise
        assert obs.get_tracer().drain() == []
        assert obs.current_context() is None

    def test_cross_process_graft(self):
        """Worker-side spans pickle home and rebuild one tree."""
        parent_tracer = obs.enable_tracing()
        with obs.span("batch") as batch_span:
            ctx = obs.current_context()
            assert ctx == batch_span.context
            # Simulate the worker: fresh tracer, attach the shipped
            # context, record, drain, pickle back.
            worker = Tracer()
            with attach(pickle.loads(pickle.dumps(ctx))):
                with worker.span("copy"):
                    pass
            shipped = pickle.loads(pickle.dumps(worker.drain()))
        parent_tracer.adopt(shipped)
        by_name = {sp.name: sp for sp in parent_tracer.finished}
        assert by_name["copy"].parent_id == by_name["batch"].span_id
        assert by_name["copy"].trace_id == by_name["batch"].trace_id

    def test_adopt_accepts_dicts(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        doc = tracer.finished[0].to_dict()
        other = Tracer()
        other.adopt([doc])
        assert other.finished[0].span_id == doc["span_id"]

    def test_jsonl_round_trip(self):
        tracer = obs.enable_tracing()
        with obs.span("a", k="v"):
            with obs.span("b"):
                pass
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(lines) == 2
        assert all(doc["kind"] == "span" for doc in lines)
        rebuilt = [Span.from_dict(doc) for doc in lines]
        assert {sp.name for sp in rebuilt} == {"a", "b"}

    def test_render_tree_indents_children(self):
        tracer = obs.enable_tracing()
        with obs.span("root"):
            with obs.span("child"):
                pass
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_orphan_spans_render_as_roots(self):
        orphan = Span(
            name="lost", trace_id="t", span_id="s1",
            parent_id="never-reported", start_unix=1.0,
        )
        assert "lost" in render_span_tree([orphan])


class TestMetrics:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_copies_total", "Copies")
        c.inc(status="ok")
        c.inc(2, status="ok")
        c.inc(status="failed")
        assert c.value(status="ok") == 3
        assert c.value(status="failed") == 1
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_pool_size")
        g.set(4)
        g.dec()
        assert g.value() == 3

    def test_registry_idempotent_but_type_strict(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.histogram("x_total")

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("h_seconds", buckets=(0.5, 1.0))

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        (sample,) = list(h.samples())
        assert sample["count"] == 5
        assert sample["buckets"]["0.1"] == 1
        assert sample["buckets"]["1"] == 3
        assert sample["buckets"]["10"] == 4
        # +Inf bucket equals the count.
        text = reg.to_prometheus()
        assert 'h_seconds_bucket{le="+Inf"} 5' in text
        assert "h_seconds_count 5" in text

    def test_prometheus_text_is_scrape_shaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "A counter").inc(kind="a b")
        h = reg.histogram("h_seconds", "Histogram", buckets=(1.0,))
        h.observe(0.5, stage="trace")
        text = reg.to_prometheus()
        assert text.endswith("\n")
        assert "# HELP c_total A counter" in text
        assert "# TYPE c_total counter" in text
        assert "# TYPE h_seconds histogram" in text
        assert 'c_total{kind="a b"} 1' in text
        assert 'h_seconds_bucket{stage="trace",le="1"} 1' in text
        # Every non-comment line is "name{labels} value".
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value)  # parses

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(path='a"b\\c\nd')
        text = reg.to_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_jsonl_samples_parse(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.2)
        buf = io.StringIO()
        reg.write_jsonl(buf)
        docs = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert {d["kind"] for d in docs} == {"metric"}
        assert {d["type"] for d in docs} == {"counter", "histogram"}

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("with space")
        with pytest.raises(ValueError):
            reg.counter("ok_total").inc(**{"0bad": 1})


class TestStageAccumulator:
    def test_accumulates_across_entries(self):
        acc = StageAccumulator()
        with acc.measure("s"):
            pass
        with acc.measure("s"):
            pass
        assert acc.stages["s"] >= 0.0
        assert acc.total() == sum(acc.stages.values())

    def test_recursive_reentry_counts_wall_time_once(self):
        """Regression: the old measure() accumulated on every exit, so
        a recursively re-entered stage double-counted the inner
        interval. Only the outermost entry may accumulate."""
        acc = StageAccumulator()
        acc2 = StageAccumulator()

        def recurse(depth):
            with acc.measure("stage"):
                if depth:
                    recurse(depth - 1)

        with acc2.measure("wall"):
            recurse(3)
        # Four nested entries must report (at most) the single outer
        # wall time, not ~4x it.
        assert acc.stages["stage"] <= acc2.stages["wall"] * 1.5

    def test_exception_still_accumulates(self):
        acc = StageAccumulator()
        with pytest.raises(RuntimeError):
            with acc.measure("s"):
                raise RuntimeError
        assert "s" in acc.stages

    def test_feeds_attached_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("stage_seconds")
        acc = StageAccumulator(histogram=h)
        with acc.measure("trace"):
            pass
        assert h.count(stage="trace") == 1

    def test_pickle_keeps_totals_only(self):
        acc = StageAccumulator()
        acc.record("s", 1.25)
        clone = pickle.loads(pickle.dumps(acc))
        assert clone.stages == {"s": 1.25}
        with clone.measure("s"):
            pass  # restored object still measures


class TestDispatchProfile:
    def test_profiled_run_matches_plain_run(self):
        module = gcd_module()
        plain = run_module(module, [48, 18])
        prof = run_module(module, [48, 18], profile=True)
        assert prof.output == plain.output
        assert prof.steps == plain.steps
        assert plain.dispatch_counts is None
        counts = prof.dispatch_counts
        assert counts is not None and len(counts) == NUM_OPCODES

    def test_counts_reconstruct_exact_steps(self):
        """sum(count * slot_width) over every slot == executed steps."""
        module = gcd_module()
        for mode in (None, "branch", "full"):
            result = run_module(module, [48, 18], trace_mode=mode,
                                profile=True)
            total = sum(
                n * slot_width(op)
                for op, n in enumerate(result.dispatch_counts)
            )
            assert total == result.steps

    def test_from_counts_and_ratios(self):
        raw = [0] * NUM_OPCODES
        raw[1] = 10                    # an unfused opcode
        raw[OP_FUSED_BASE] = 5         # a fused slot
        width = slot_width(OP_FUSED_BASE)
        profile = DispatchProfile.from_counts(raw)
        assert profile.total_dispatches == 15
        assert profile.total_steps == 10 + 5 * width
        assert profile.fused_dispatches == 5
        assert profile.superinstruction_hit_rate == pytest.approx(
            5 * width / (10 + 5 * width)
        )
        assert profile.dispatch_reduction == pytest.approx(
            1 - 15 / (10 + 5 * width)
        )
        assert opcode_name(OP_FUSED_BASE) in dict(profile.top(5))

    def test_gap_opcodes_have_width_one(self):
        for op in (92, 93, 94):
            assert slot_width(op) == 1

    def test_merge_and_round_trip(self):
        module = gcd_module()
        _, a = profile_run(module, [48, 18])
        before = a.total_steps
        b = DispatchProfile.from_dict(a.to_dict())
        assert b.to_dict() == a.to_dict()
        a.merge(b)
        assert a.total_steps == 2 * before
        assert a.runs == 2

    def test_profile_run_traced_reports_trace_bytes(self):
        module = gcd_module()
        result, profile = profile_run(module, [48, 18], trace_mode="full")
        assert result.trace is not None
        assert profile.trace_bytes > 0
        assert profile.wall_seconds > 0
        assert profile.trace_bytes_per_second > 0
        assert "dispatch profile:" in profile.summary()


class TestRecognitionReport:
    def test_json_round_trip_with_int_keys(self):
        report = RecognitionReport(
            scheme="bytecode",
            complete=True,
            value=0xBEEF,
            voting={0: {3: 10, 5: 1}, 1: {2: 9}},
            clear_winners={0: 3, 1: 2},
            moduli=[7, 11],
            moduli_covered=[0, 1],
        )
        rebuilt = RecognitionReport.from_dict(
            json.loads(report.to_json())
        )
        assert rebuilt.voting == report.voting
        assert rebuilt.clear_winners == report.clear_winners
        assert rebuilt.to_dict() == report.to_dict()

    def test_bytecode_summary_shows_funnel(self):
        report = RecognitionReport(
            scheme="bytecode", complete=False,
            windows_inspected=100, window_hits=0,
            moduli=[7, 11], moduli_missing=[0, 1],
            notes=["nothing decoded"],
        )
        text = report.summary()
        assert "NOT recovered" in text
        assert "100 decrypt attempts" in text
        assert "p_0=7" in text and "p_1=11" in text
        assert "note: nothing decoded" in text

    def test_native_summary_shows_chain(self):
        report = RecognitionReport(
            scheme="native", complete=True, value=5,
            events_observed=12, runs_found=3, run_lengths=[9, 2, 1],
            chain_length=9, bf_entry=0x8000, width=8,
        )
        text = report.summary()
        assert "0x8000" in text
        assert "3 linked runs" in text
        assert "longest 9" in text
