"""Tests for the branch-function watermarker (Section 4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import EmbeddingError
from repro.lang.codegen_native import compile_source_native
from repro.native import run_image
from repro.native_wm import (
    BranchFunctionSpec,
    branch_function_byte_size,
    build_perfect_hash,
    embed_native,
    emit_branch_function,
    extract_native,
    hash_geometry,
    identify_branch_function,
)

HOST_SRC = """
fn hot(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) { acc = acc + i * i; }
    return acc;
}
fn late_a(x) {
    var y = 0;
    if (x % 2 == 0) { y = x + 1; } else { y = x - 1; }
    return y;
}
fn late_b(x) {
    var y = 0;
    if (x > 10) { y = x * 3; } else { y = x * 5; }
    return y;
}
fn late_c(x) {
    var y = 0;
    if (x != 7) { y = 1; } else { y = 2; }
    return y;
}
fn main() {
    var n = input();
    print(hot(n));
    if (n > 2) { print(n * 2); } else { print(n); }
    print(late_a(n));
    print(late_b(n));
    print(late_c(n));
    return 0;
}
"""

KEY_INPUT = [50]


@pytest.fixture(scope="module")
def host_image():
    return compile_source_native(HOST_SRC)


@pytest.fixture(scope="module")
def embedded(host_image):
    return embed_native(host_image, watermark=0xBEE, width=12,
                        inputs=KEY_INPUT)


class TestPerfectHash:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 2**32))
    def test_collision_free(self, n, seed):
        keys = random.Random(seed).sample(range(0x08048000, 0x08148000), n)
        ph = build_perfect_hash(keys, random.Random(seed ^ 1))
        slots = [ph.evaluate(k) for k in keys]
        assert len(set(slots)) == n
        assert all(0 <= s < ph.size for s in slots)

    def test_geometry_power_of_two(self):
        for n in (1, 2, 3, 5, 17, 129):
            m, g = hash_geometry(n)
            assert m & (m - 1) == 0 and m >= n
            assert g & (g - 1) == 0

    def test_duplicate_keys_rejected(self):
        with pytest.raises(EmbeddingError, match="distinct"):
            build_perfect_hash([5, 5], random.Random(0))

    def test_empty_rejected(self):
        with pytest.raises(EmbeddingError):
            build_perfect_hash([], random.Random(0))


class TestBranchFunctionEmission:
    def test_parameter_independent_length(self):
        a = branch_function_byte_size(BranchFunctionSpec(helper_pad=16))
        b = branch_function_byte_size(BranchFunctionSpec(
            mul=0xDEADBEEF, shift=21, g_mask=0x7FF, slot_mask=0x3F,
            g_base=0x8150000, t_base=0x8151000, lock_base=0x8152000,
            helper_pad=16,
        ))
        assert a == b

    def test_depth_accounts_for_pad(self):
        s1 = BranchFunctionSpec(helper_pad=8)
        s2 = BranchFunctionSpec(helper_pad=32)
        assert s2.hash_input_depth - s1.hash_input_depth == 24

    def test_emission_contains_the_fig7_shape(self):
        mnemonics = [
            item.mnemonic for item in emit_branch_function(
                BranchFunctionSpec()
            ) if not isinstance(item, tuple)
        ]
        # pushf/register saves, hash (imul/shr/xor/and + table load),
        # return-address fix (xor into stack), restore, ret.
        for required in ("pushf", "imul_rri", "shr_ri", "mov_rx",
                         "xor_mr", "popf", "ret"):
            assert required in mnemonics, required


class TestEmbedNative:
    def test_semantics_preserved_on_key_input(self, host_image, embedded):
        want = run_image(host_image, KEY_INPUT).output
        assert run_image(embedded.image, KEY_INPUT).output == want

    def test_semantics_preserved_on_other_inputs(self, host_image, embedded):
        for probe in ([4], [17], [100]):
            want = run_image(host_image, probe).output
            assert run_image(embedded.image, probe).output == want

    def test_chain_addresses_encode_bits(self, embedded):
        addrs = embedded.call_addresses
        assert len(addrs) == embedded.width + 1
        bits = [1 if addrs[i + 1] > addrs[i] else 0
                for i in range(embedded.width)]
        assert sum(b << k for k, b in enumerate(bits)) == embedded.watermark

    def test_no_raw_text_addresses_in_tables(self, host_image, embedded):
        """Footnote 2: the data section must not contain a run of text
        addresses — T entries are XOR-masked."""
        data = embedded.image.data
        new_region = data[len(host_image.data):]
        hits = 0
        for off in range(0, len(new_region) - 4, 4):
            word = int.from_bytes(new_region[off:off + 4], "little")
            if word in set(embedded.call_addresses):
                hits += 1
        assert hits == 0

    def test_tamper_cells_created(self, embedded):
        assert len(embedded.tamper_jumps) >= 1

    def test_oversized_watermark_rejected(self, host_image):
        with pytest.raises(EmbeddingError):
            embed_native(host_image, watermark=1 << 8, width=8,
                         inputs=KEY_INPUT)

    def test_size_increase_positive_and_recorded(self, embedded, host_image):
        assert embedded.size_increase > 0
        assert embedded.image.total_size() == \
            host_image.total_size() + embedded.size_increase

    @pytest.mark.parametrize("wm,width", [
        (0, 8), (0xFF, 8), (0x5A5A, 16), (0xC0FFEE, 24),
    ])
    def test_various_widths(self, host_image, wm, width):
        emb = embed_native(host_image, wm, width, KEY_INPUT)
        want = run_image(host_image, KEY_INPUT).output
        assert run_image(emb.image, KEY_INPUT).output == want
        res = extract_native(emb.image, width, emb.begin, emb.end,
                             KEY_INPUT, tracer="smart")
        assert res.watermark == wm


class TestExtraction:
    def test_both_tracers_extract(self, embedded):
        for tracer in ("simple", "smart"):
            res = extract_native(
                embedded.image, embedded.width, embedded.begin,
                embedded.end, KEY_INPUT, tracer=tracer,
            )
            assert res.complete
            assert res.watermark == embedded.watermark

    def test_branch_function_auto_identified(self, embedded):
        found = identify_branch_function(embedded.image, KEY_INPUT)
        assert found == embedded.bf_entry

    def test_unwatermarked_binary_yields_nothing(self, host_image):
        assert identify_branch_function(host_image, KEY_INPUT) is None
        res = extract_native(host_image, 12, 0, 0, KEY_INPUT)
        assert not res.complete

    def test_wrong_bracket_fails(self, embedded):
        res = extract_native(
            embedded.image, embedded.width, embedded.begin + 2,
            embedded.end, KEY_INPUT,
        )
        assert res.watermark != embedded.watermark or not res.complete

    def test_unknown_tracer_rejected(self, embedded):
        with pytest.raises(ValueError):
            extract_native(embedded.image, 4, 0, 0, [], tracer="psychic")

    def test_event_consistency(self, embedded):
        res = extract_native(
            embedded.image, embedded.width, embedded.begin, embedded.end,
            KEY_INPUT, tracer="smart",
        )
        assert [e.source for e in res.events] == embedded.call_addresses
        for ev, nxt in zip(res.events, res.events[1:]):
            assert ev.resumed_at == nxt.source
        assert res.events[-1].resumed_at == embedded.end


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**16 - 1))
def test_roundtrip_random_marks(wm):
    image = compile_source_native(HOST_SRC)
    emb = embed_native(image, wm, 16, KEY_INPUT)
    res = extract_native(emb.image, 16, emb.begin, emb.end, KEY_INPUT)
    assert res.watermark == wm
