"""Executable documentation: every snippet in the docs must be real.

Walks `README.md` and every page under `docs/` and enforces three
contracts:

* fenced ``python`` blocks execute cleanly (blocks tagged ``skip``
  in the fence info string are only compiled);
* every ``python -m repro ...`` command in ``bash``/``console``
  blocks names a real subcommand and real flags, validated against
  the actual argparse tree (nested subcommands included);
* every ``curl`` command targets a ``(method, path)`` pair that the
  serving daemon actually routes (``repro.serve.daemon.ROUTES``).

So a renamed flag, a dropped subcommand, or a daemon route change
breaks the build until the docs catch up.
"""

import argparse
import json
import os
import re
import shlex

import pytest

from repro import obs
from repro.cli import build_parser
from repro.obs.metrics import MetricsRegistry
from repro.serve import ArtifactStore
from repro.serve.daemon import ROUTES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_PAGES = sorted(
    [os.path.join(REPO_ROOT, "README.md")]
    + [
        os.path.join(REPO_ROOT, "docs", name)
        for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
        if name.endswith(".md")
    ]
)


def extract_blocks(path):
    """Yield (info, first_line_number, source) per fenced code block."""
    with open(path) as fp:
        lines = fp.read().splitlines()
    blocks = []
    info = None
    start = 0
    buf = []
    for number, line in enumerate(lines, 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if info is None:
                info = stripped[3:].strip()
                start = number + 1
                buf = []
            else:
                blocks.append((info, start, "\n".join(buf)))
                info = None
        elif info is not None:
            buf.append(line)
    assert info is None, f"{path}: unterminated code fence at line {start}"
    return blocks


def blocks_of(language):
    """All (page, line, source) blocks whose fence starts with `language`."""
    out = []
    for page in DOC_PAGES:
        for info, line, source in extract_blocks(page):
            tokens = info.split()
            if tokens and tokens[0] == language:
                out.append((os.path.relpath(page, REPO_ROOT), line, info, source))
    return out


def _param_id(entry):
    page, line, _info, _source = entry
    return f"{page}:{line}"


PYTHON_BLOCKS = blocks_of("python")
SHELL_BLOCKS = blocks_of("bash") + blocks_of("console")
JSON_BLOCKS = blocks_of("json")


def join_continuations(text):
    """Merge backslash-continued shell lines into single commands."""
    out = []
    pending = ""
    for line in text.splitlines():
        line = line.rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        out.append(pending + line)
        pending = ""
    if pending:
        out.append(pending.rstrip())
    return out


def shell_commands():
    """Every (page, line, command) from bash/console blocks."""
    commands = []
    for page, line, _info, source in SHELL_BLOCKS:
        for command in join_continuations(source):
            command = command.strip()
            if command.startswith("$ "):  # console prompt form
                command = command[2:]
            if command and not command.startswith("#"):
                commands.append((page, line, command))
    return commands


# ---------------------------------------------------------------------------
# python blocks actually run


class TestPythonSnippets:
    @pytest.fixture(autouse=True)
    def _sandbox(self, tmp_path, monkeypatch):
        """Run each snippet in a scratch cwd with a ready, empty store.

        ``store/`` exists because the serving docs build configs on a
        relative store path; ambient tracer/registry state is isolated
        so doc snippets cannot leak into other tests.
        """
        monkeypatch.chdir(tmp_path)
        ArtifactStore(str(tmp_path / "store"))
        previous = obs.set_registry(MetricsRegistry())
        obs.disable_tracing()
        yield
        obs.set_registry(previous)
        obs.disable_tracing()

    @pytest.mark.parametrize("entry", PYTHON_BLOCKS, ids=_param_id)
    def test_block(self, entry):
        page, line, info, source = entry
        code = compile(source, f"{page}:{line}", "exec")
        if "skip" in info.split():
            return  # compile-only: documented but not runnable here
        namespace = {"__name__": f"docsnippet_{line}"}
        exec(code, namespace)

    def test_docs_have_runnable_python(self):
        assert len(PYTHON_BLOCKS) >= 4


# ---------------------------------------------------------------------------
# CLI commands name real subcommands and flags


def _subparser_actions(parser):
    return [
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]


def _known_options(parser):
    options = set()
    for action in parser._actions:
        options.update(action.option_strings)
    return options


def validate_repro_command(tokens, parser, where):
    """Walk `repro <sub> [<subsub>] --flags...` against the live parser."""
    position = 0
    while position < len(tokens):
        subs = _subparser_actions(parser)
        token = tokens[position]
        if subs and not token.startswith("-"):
            choices = subs[0].choices
            assert token in choices, (
                f"{where}: unknown subcommand {token!r} "
                f"(have: {', '.join(sorted(choices))})"
            )
            parser = choices[token]
            position += 1
            continue
        break
    known = _known_options(parser)
    for token in tokens[position:]:
        if token.startswith("--"):
            flag = token.split("=", 1)[0]
            assert flag in known, (
                f"{where}: flag {flag!r} is not accepted here "
                f"(have: {', '.join(sorted(known))})"
            )


class TestCLICommands:
    parser = build_parser()

    @pytest.mark.parametrize(
        "page,line,command",
        [c for c in shell_commands() if "python -m repro" in c[2]],
        ids=lambda value: value if isinstance(value, str) else None,
    )
    def test_repro_invocations(self, page, line, command):
        text = command[command.index("python -m repro") :]
        tokens = shlex.split(text)[3:]  # drop python -m repro
        assert tokens, f"{page}:{line}: bare 'python -m repro'"
        validate_repro_command(tokens, self.parser, f"{page}:{line}")

    def test_docs_cover_the_new_subcommands(self):
        joined = " ".join(c for _, _, c in shell_commands())
        assert "repro serve" in joined
        assert "repro artifact prepare" in joined
        assert "repro batch-embed" in joined
        assert "repro obs" in joined


# ---------------------------------------------------------------------------
# curl walkthroughs hit real daemon routes


def curl_commands():
    return [
        (page, line, command)
        for page, line, command in shell_commands()
        if command.startswith("curl")
    ]


class TestCurlWalkthrough:
    @pytest.mark.parametrize(
        "page,line,command", curl_commands(),
        ids=lambda value: value if isinstance(value, str) else None,
    )
    def test_route_exists(self, page, line, command):
        url = re.search(r"https?://[^\s'\"]+", command)
        assert url, f"{page}:{line}: curl command without a URL"
        path = "/" + url.group(0).split("/", 3)[-1].split("?")[0]
        method = "GET"
        if " -X " in command:
            method = command.split(" -X ", 1)[1].split()[0].upper()
        elif " -d " in command or " --data" in command:
            method = "POST"
        assert (method, path) in ROUTES, (
            f"{page}:{line}: the daemon does not route {method} {path} "
            f"(routes: {sorted(ROUTES)})"
        )

    def test_walkthrough_covers_the_core_routes(self):
        hit = set()
        for _, _, command in curl_commands():
            url = re.search(r"https?://[^\s'\"]+", command)
            if url:
                hit.add("/" + url.group(0).split("/", 3)[-1].split("?")[0])
        assert {"/healthz", "/v1/embed", "/v1/recognize", "/metrics"} <= hit


# ---------------------------------------------------------------------------
# json examples parse


class TestJsonExamples:
    @pytest.mark.parametrize("entry", JSON_BLOCKS, ids=_param_id)
    def test_parses(self, entry):
        page, line, _info, source = entry
        if not source.lstrip().startswith("{"):
            return  # a fragment (e.g. a single field), not a document
        json.loads(source)
