"""Tests for WVM CFG construction and the bytecode verifier."""

import pytest

from repro.vm import (
    Function,
    Module,
    VerificationError,
    assemble,
    build_cfg,
    ins,
    is_verifiable,
    label,
    verify_module,
)

LOOPY_SRC = """
.entry main
.func main params=0 locals=2
    const 5
    store 0
head:
    load 0
    ifeq exit
    load 0
    const 2
    mod
    ifeq even
    iinc 0 -1
    goto head
even:
    iinc 0 -1
    goto head
exit:
    const 0
    ret
.end
"""


class TestCFG:
    def test_blocks_and_successors(self):
        module = assemble(LOOPY_SRC)
        cfg = build_cfg(module.functions["main"])
        assert cfg.entry == "@0"
        assert set(cfg.blocks) >= {"head", "even", "exit"}
        assert cfg.successors("@0") == ["head"]
        head_succ = set(cfg.successors("head"))
        assert "exit" in head_succ
        assert cfg.successors("exit") == []

    def test_loop_detection(self):
        module = assemble(LOOPY_SRC)
        cfg = build_cfg(module.functions["main"])
        loops = cfg.loop_blocks()
        assert "head" in loops
        assert "even" in loops
        assert "exit" not in loops

    def test_straightline_single_block_no_loops(self):
        fn = Function("f", 0, 0, [ins("const", 1), ins("print"),
                                  ins("const", 0), ins("ret")])
        cfg = build_cfg(fn)
        assert len(cfg.blocks) == 1
        assert cfg.back_edges() == []

    def test_reachability(self):
        src = """
.entry main
.func main params=0 locals=0
    const 0
    ret
dead:
    const 1
    print
    const 0
    ret
.end
"""
        module = assemble(src)
        cfg = build_cfg(module.functions["main"])
        assert "dead" not in cfg.reachable()
        assert cfg.entry in cfg.reachable()

    def test_conditional_fallthrough_block_naming(self):
        module = assemble(LOOPY_SRC)
        cfg = build_cfg(module.functions["main"])
        # The instruction after `ifeq even` starts an unnamed block.
        unnamed = [n for n in cfg.order if n.startswith("@")]
        assert len(unnamed) >= 2  # entry block plus a fall-through

    def test_predecessors(self):
        module = assemble(LOOPY_SRC)
        cfg = build_cfg(module.functions["main"])
        preds = cfg.predecessors()
        assert set(preds["head"]) >= {"@0", "even"}


class TestVerifier:
    def test_valid_module_passes(self):
        verify_module(assemble(LOOPY_SRC))

    def _module_with_main(self, code, locals_count=4, extra=None):
        m = Module()
        m.add(Function("main", 0, locals_count, code))
        if extra:
            m.add(extra)
        return m

    def test_stack_underflow(self):
        m = self._module_with_main([ins("add"), ins("const", 0), ins("ret")])
        with pytest.raises(VerificationError, match="underflow"):
            verify_module(m)

    def test_fall_off_end(self):
        m = self._module_with_main([ins("const", 1), ins("pop")])
        with pytest.raises(VerificationError, match="falls off"):
            verify_module(m)

    def test_depth_mismatch_at_join(self):
        # One path reaches `join` with depth 1, the other with depth 2.
        code = [
            ins("const", 0),
            ins("ifeq", "skip"),
            ins("const", 1),
            ins("const", 2),
            ins("goto", "join"),
            label("skip"),
            ins("const", 1),
            label("join"),
            ins("print"),
            ins("const", 0),
            ins("ret"),
        ]
        m = self._module_with_main(code)
        with pytest.raises(VerificationError, match="depth mismatch"):
            verify_module(m)

    def test_consistent_join_passes(self):
        code = [
            ins("const", 0),
            ins("ifeq", "skip"),
            ins("const", 1),
            ins("goto", "join"),
            label("skip"),
            ins("const", 2),
            label("join"),
            ins("print"),
            ins("const", 0),
            ins("ret"),
        ]
        verify_module(self._module_with_main(code))

    def test_bad_local_slot(self):
        m = self._module_with_main(
            [ins("load", 9), ins("pop"), ins("const", 0), ins("ret")],
            locals_count=2,
        )
        with pytest.raises(VerificationError, match="out of range"):
            verify_module(m)

    def test_bad_global_index(self):
        m = self._module_with_main(
            [ins("gload", 0), ins("pop"), ins("const", 0), ins("ret")]
        )
        with pytest.raises(VerificationError, match="out of range"):
            verify_module(m)

    def test_call_arity_checked_via_depth(self):
        callee = Function("two", 2, 2, [ins("load", 0), ins("ret")])
        m = self._module_with_main(
            [ins("const", 1), ins("call", "two"), ins("pop"),
             ins("const", 0), ins("ret")],
            extra=callee,
        )
        with pytest.raises(VerificationError, match="underflow"):
            verify_module(m)

    def test_empty_function_rejected(self):
        m = self._module_with_main([])
        with pytest.raises(VerificationError, match="empty function"):
            verify_module(m)

    def test_const_operand_type_checked(self):
        m = self._module_with_main(
            [ins("const", "oops"), ins("pop"), ins("const", 0), ins("ret")]
        )
        with pytest.raises(VerificationError, match="const operand"):
            verify_module(m)

    def test_is_verifiable_bool(self):
        assert is_verifiable(assemble(LOOPY_SRC))
        m = self._module_with_main([ins("add"), ins("const", 0), ins("ret")])
        assert not is_verifiable(m)

    def test_loop_with_net_stack_growth_rejected(self):
        # Each iteration pushes one extra value: depth at the join
        # differs between first entry and the back edge.
        code = [
            label("head"),
            ins("const", 1),
            ins("const", 0),
            ins("ifeq", "head"),
            ins("pop"),
            ins("const", 0),
            ins("ret"),
        ]
        m = self._module_with_main(code)
        with pytest.raises(VerificationError, match="depth mismatch"):
            verify_module(m)
