"""Scale tests: the paper's largest configurations, end to end.

The evaluation's headline sizes are 512-bit watermarks (both sides)
and the 768-bit recovery experiment of Figure 5. These tests run each
once at full size — slower than unit tests but essential: several
bugs (hash geometry, slot exhaustion, window budgets) only appear at
scale.
"""

import random

import pytest

pytestmark = pytest.mark.slow

from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.cipher import cipher_for_secret
from repro.core.enumeration import StatementEnumeration
from repro.core.primes import choose_moduli
from repro.core.recovery import recover
from repro.core.splitting import split
from repro.native import run_image
from repro.native_wm import embed_native, extract_native
from repro.vm import run_module
from repro.workloads import jess_module
from repro.workloads.spec import TRAIN_INPUT, spec_native


def test_512_bit_bytecode_watermark():
    """The paper's largest Java-side configuration."""
    watermark = (1 << 512) // 3
    key = WatermarkKey(secret=b"scale-512", inputs=[7, 13])
    host = jess_module(rule_count=48, burn=2000)
    moduli = choose_moduli(512)
    marked = embed(host, watermark, key, pieces=2 * len(moduli),
                   watermark_bits=512)
    assert run_module(marked.module, key.inputs).output == \
        run_module(host, key.inputs).output
    found = recognize(marked.module, key, watermark_bits=512)
    assert found.complete
    assert found.value == watermark


def test_512_bit_native_watermark():
    """The paper's largest native configuration on a real kernel."""
    watermark = (1 << 512) - 0xDEADBEEF
    image = spec_native("vortex")
    emb = embed_native(image, watermark, 512, TRAIN_INPUT)
    assert len(emb.call_addresses) == 513
    assert run_image(emb.image, TRAIN_INPUT).output == \
        run_image(image, TRAIN_INPUT).output
    res = extract_native(emb.image, 512, emb.begin, emb.end, TRAIN_INPUT)
    assert res.watermark == watermark


def test_768_bit_pure_recovery():
    """Figure 5's watermark width through the full bit-level pipeline."""
    watermark = (1 << 768) // 7
    moduli = choose_moduli(768)
    enum = StatementEnumeration(moduli)
    cipher = cipher_for_secret(b"scale-768")
    rng = random.Random(42)
    pieces = split(watermark, moduli, len(moduli) + 8, rng)
    bits = [rng.randint(0, 1) for _ in range(48)]
    for stmt in pieces:
        bits.extend(int_to_bits_lsb_first(
            cipher.encrypt_block(enum.encode(stmt)), 64
        ))
        bits.extend(rng.randint(0, 1) for _ in range(12))
    result = recover(bits, cipher, enum)
    assert result.complete
    assert result.value == watermark


def test_extreme_width_rejected_cleanly():
    """Widths beyond the 64-bit block budget fail with a clear error,
    not a corrupt embedding."""
    with pytest.raises(ValueError):
        choose_moduli(100_000)
