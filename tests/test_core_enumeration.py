"""Tests for the statement enumeration scheme (Section 3.2, step B)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.enumeration import Statement, StatementEnumeration
from repro.core.primes import statement_space_size


MODULI = [2, 3, 5]  # The paper's running example (Figures 3 and 4).


class TestStatement:
    def test_modulus_and_primes(self):
        s = Statement(0, 2, 7)
        assert s.modulus(MODULI) == 10
        assert s.primes(MODULI) == (2, 5)

    def test_congruence(self):
        s = Statement(0, 1, 5)
        c = s.congruence(MODULI)
        assert c.value == 5 and c.modulus == 6


class TestEnumerationConstruction:
    def test_rejects_single_modulus(self):
        with pytest.raises(ValueError):
            StatementEnumeration([7])

    def test_rejects_unit_moduli(self):
        with pytest.raises(ValueError):
            StatementEnumeration([1, 5])

    def test_space_size_matches_pair_products(self):
        e = StatementEnumeration(MODULI)
        assert e.space_size == 2 * 3 + 2 * 5 + 3 * 5
        assert e.space_size == statement_space_size(MODULI)
        assert e.pair_count == 3


class TestPairIndex:
    def test_lexicographic_order(self):
        e = StatementEnumeration([2, 3, 5, 7])
        expected = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        for pos, (i, j) in enumerate(expected):
            assert e.pair_index(i, j) == pos

    def test_rejects_bad_pairs(self):
        e = StatementEnumeration(MODULI)
        with pytest.raises(ValueError):
            e.pair_index(1, 1)
        with pytest.raises(ValueError):
            e.pair_index(2, 1)
        with pytest.raises(ValueError):
            e.pair_index(0, 3)


class TestEncodeDecode:
    def test_encode_rejects_out_of_range_residue(self):
        e = StatementEnumeration(MODULI)
        with pytest.raises(ValueError):
            e.encode(Statement(0, 1, 6))

    def test_decode_out_of_range_is_none(self):
        e = StatementEnumeration(MODULI)
        assert e.decode(-1) is None
        assert e.decode(e.space_size) is None
        assert e.decode(2**63) is None

    def test_exhaustive_bijection_small(self):
        e = StatementEnumeration(MODULI)
        seen = set()
        for code in range(e.space_size):
            stmt = e.decode(code)
            assert stmt is not None
            assert e.encode(stmt) == code
            seen.add(stmt)
        assert len(seen) == e.space_size

    @given(st.data())
    def test_roundtrip_random_moduli(self, data):
        moduli = data.draw(
            st.lists(st.integers(2, 50), min_size=2, max_size=6, unique=True)
        )
        e = StatementEnumeration(moduli)
        code = data.draw(st.integers(0, e.space_size - 1))
        stmt = e.decode(code)
        assert stmt is not None
        assert e.encode(stmt) == code
        assert 0 <= stmt.x < stmt.modulus(moduli)
