"""Tests for the WVM assembler/disassembler and program containers."""

import pytest
from hypothesis import given, strategies as st

from repro.vm import (
    AssemblyError,
    Function,
    Instruction,
    Module,
    VMFormatError,
    assemble,
    disassemble,
    ins,
    label,
    run_module,
)

GCD_SRC = """
; greatest common divisor, the paper's Figure 2 example
.globals 1
.entry main

.func main params=0 locals=0
    const 25
    const 10
    call gcd
    print
    const 0
    ret
.end

.func gcd params=2 locals=3
loop:
    load 0
    load 1
    mod
    ifeq done
    load 1
    store 2
    load 0
    load 1
    mod
    store 1
    load 2
    store 0
    goto loop
done:
    load 1
    ret
.end
"""


class TestAssembler:
    def test_assembles_and_runs(self):
        module = assemble(GCD_SRC)
        assert set(module.functions) == {"main", "gcd"}
        assert module.globals_count == 1
        assert run_module(module).output == [5]

    def test_comments_and_blank_lines(self):
        src = ".entry main\n.func main params=0 locals=0\n" \
              "    const 1  ; push\n\n    # full-line comment\n" \
              "    print\n    const 0\n    ret\n.end\n"
        assert run_module(assemble(src)).output == [1]

    def test_hex_and_negative_operands(self):
        src = ".entry main\n.func main params=0 locals=1\n" \
              "    const 0x10\n    print\n    const -3\n    print\n" \
              "    iinc 0 -1\n    load 0\n    print\n    const 0\n    ret\n.end\n"
        assert run_module(assemble(src)).output == [16, -3, -1]

    @pytest.mark.parametrize(
        "src,message",
        [
            ("    const 1\n", "outside .func"),
            (".func f params=0\n.end\n", ".func needs"),
            (".func f params=0 locals=0\n    bogus\n.end\n", "unknown opcode"),
            (".func f params=0 locals=0\n    const x\n.end\n", "integer"),
            (".func f params=0 locals=0\n    iinc 1\n.end\n", "slot and delta"),
            (".func f params=0 locals=0\n    add 3\n.end\n", "no operands"),
            (".func f params=0 locals=0\n.func g params=0 locals=0\n",
             "nested"),
            (".bogus 3\n", "unknown directive"),
            (".end\n", ".end without"),
            (".func f params=0 locals=0\n    const 1\n    ret\n",
             "missing .end"),
        ],
    )
    def test_syntax_errors(self, src, message):
        with pytest.raises(AssemblyError, match=message):
            assemble(src)

    def test_unknown_branch_target_rejected(self):
        src = ".entry main\n.func main params=0 locals=0\n" \
              "    goto nowhere\n.end\n"
        with pytest.raises(VMFormatError, match="unknown label"):
            assemble(src)

    def test_unknown_call_target_rejected(self):
        src = ".entry main\n.func main params=0 locals=0\n" \
              "    call ghost\n.end\n"
        with pytest.raises(VMFormatError, match="unknown function"):
            assemble(src)


class TestDisassemblerRoundtrip:
    def test_gcd_roundtrip(self):
        module = assemble(GCD_SRC)
        text = disassemble(module)
        again = assemble(text)
        assert run_module(again).output == [5]
        assert disassemble(again) == text

    def test_roundtrip_preserves_structure(self):
        module = assemble(GCD_SRC)
        again = assemble(disassemble(module))
        assert set(again.functions) == set(module.functions)
        for name in module.functions:
            a, b = module.functions[name], again.functions[name]
            assert a.params == b.params
            assert a.locals_count == b.locals_count
            assert [(i.op, i.arg, i.arg2) for i in a.code] == [
                (i.op, i.arg, i.arg2) for i in b.code
            ]


class TestProgramContainers:
    def test_function_byte_size(self):
        fn = Function("f", 0, 0, [ins("const", 1), ins("print"),
                                  ins("const", 0), ins("ret")])
        # 5 + 1 + 5 + 1 + header
        assert fn.byte_size() == 12 + Function.HEADER_BYTES

    def test_labels_are_free(self):
        fn1 = Function("f", 0, 0, [ins("const", 0), ins("ret")])
        fn2 = Function("f", 0, 0, [label("a"), ins("const", 0),
                                   label("b"), ins("ret")])
        assert fn1.byte_size() == fn2.byte_size()

    def test_duplicate_label_rejected(self):
        fn = Function("f", 0, 0, [label("a"), label("a"), ins("ret")])
        with pytest.raises(VMFormatError, match="duplicate label"):
            fn.labels()

    def test_fresh_labels_distinct(self):
        fn = Function("f", 0, 0, [label("wm_0"), ins("const", 0), ins("ret")])
        fresh = fn.fresh_labels(3)
        assert len(set(fresh)) == 3
        assert "wm_0" not in fresh

    def test_alloc_local_and_global(self):
        fn = Function("f", 1, 1, [ins("const", 0), ins("ret")])
        assert fn.alloc_local() == 1
        assert fn.locals_count == 2
        m = Module()
        assert m.alloc_global() == 0
        assert m.globals_count == 1

    def test_copy_is_deep(self):
        module = assemble(GCD_SRC)
        clone = module.copy()
        clone.functions["gcd"].code[0] = ins("nop")
        assert module.functions["gcd"].code[0].op != "nop"
        # Instruction objects are fresh (identity matters for tracing).
        assert module.functions["main"].code[0] is not \
            clone.functions["main"].code[0]

    def test_entry_must_take_no_params(self):
        m = Module()
        m.add(Function("main", 1, 1, [ins("const", 0), ins("ret")]))
        with pytest.raises(VMFormatError, match="no parameters"):
            m.validate_structure()

    def test_module_byte_size_grows_with_code(self):
        module = assemble(GCD_SRC)
        before = module.byte_size()
        module.functions["main"].code.insert(0, ins("nop"))
        assert module.byte_size() == before + 1


@given(st.lists(st.sampled_from(
    ["add", "sub", "mul", "dup", "pop", "nop", "print"]), max_size=20))
def test_assembler_accepts_all_zero_operand_ops(ops):
    body = "\n".join(f"    {op}" for op in ops)
    # Pad the stack so everything verifies structurally; we only check
    # the assembler's parse, not execution.
    src = f".entry main\n.func main params=0 locals=0\n{body}\n" \
          "    const 0\n    ret\n.end\n"
    module = assemble(src)
    fn = module.functions["main"]
    assert [i.op for i in fn.code[:len(ops)]] == ops
