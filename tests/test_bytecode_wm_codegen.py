"""Tests for opaque predicates and the two piece code generators."""

import random

import pytest

from repro.bytecode_wm.condition_codegen import (
    find_predicate_variables,
    generate_condition_piece,
)
from repro.bytecode_wm.loop_codegen import generate_loop_piece
from repro.bytecode_wm.opaque import opaquely_false_value
from repro.core.bitstring import decode_bits
from repro.core.errors import CodegenError
from repro.vm import (
    Function,
    Module,
    ins,
    label,
    run_module,
    verify_module,
)


def harness_module(body_template, locals_count=8):
    """A module whose main executes `body_template` then returns."""
    m = Module()
    m.add(Function("main", 0, locals_count, list(body_template)))
    return m


class TestOpaquePredicates:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "x", [-17, -2, -1, 0, 1, 2, 3, 7, 100, 2**31, 2**62, -(2**62)]
    )
    def test_always_false(self, seed, x):
        rng = random.Random(seed)
        code = [ins("const", x), ins("store", 0)]
        code += opaquely_false_value(0, rng)
        code += [ins("print"), ins("const", 0), ins("ret")]
        m = harness_module(code)
        verify_module(m)
        assert run_module(m).output == [0], f"seed={seed} x={x}"

    def test_pushes_exactly_one_value(self):
        for seed in range(6):
            code = [ins("const", 5), ins("store", 0)]
            code += opaquely_false_value(0, random.Random(seed))
            code += [ins("pop"), ins("const", 0), ins("ret")]
            verify_module(harness_module(code))


def run_and_decode(module, inputs=()):
    result = run_module(module, inputs, trace_mode="branch")
    return decode_bits(result.trace.branch_pairs()), result


def find_contiguous(haystack_bits, needle_bits):
    """Offsets where needle appears contiguously in haystack."""
    n, m = len(haystack_bits), len(needle_bits)
    return [
        t for t in range(n - m + 1)
        if haystack_bits[t:t + m] == needle_bits
    ]


class TestLoopCodegen:
    def build(self, piece_bits, seed=1, executions=1):
        m = Module()
        fn = Function("main", 0, 2, [])
        m.add(fn)
        code = [
            ins("const", executions),
            ins("store", 0),
            label("site"),
        ]
        fn.code = code
        wm = generate_loop_piece(fn, piece_bits, live_slot=1,
                                 rng=random.Random(seed))
        fn.code = code + wm + [
            ins("iinc", 0, -1),
            ins("load", 0),
            ins("ifgt", "site"),
            ins("const", 0),
            ins("ret"),
        ]
        return m

    @pytest.mark.parametrize("seed", range(5))
    def test_piece_appears_contiguously(self, seed):
        rng = random.Random(seed + 100)
        piece = [rng.randint(0, 1) for _ in range(64)]
        m = self.build(piece, seed=seed)
        verify_module(m)
        bits, _ = run_and_decode(m)
        assert find_contiguous(bits, piece), "piece not in trace bits"

    def test_piece_repeats_per_site_execution(self):
        piece = [1, 0] * 32
        m = self.build(piece, executions=3)
        bits, _ = run_and_decode(m)
        assert len(find_contiguous(bits, piece)) >= 3

    def test_semantics_neutral(self):
        piece = [1] * 64
        m = self.build(piece)
        out = run_module(m)
        assert out.output == []  # no stray prints, no trap

    def test_short_pieces(self):
        piece = [1, 1, 0, 1]
        m = self.build(piece)
        bits, _ = run_and_decode(m)
        assert find_contiguous(bits, piece)

    def test_rejects_non_bits(self):
        m = Module()
        fn = Function("main", 0, 1, [ins("const", 0), ins("ret")])
        m.add(fn)
        with pytest.raises(CodegenError):
            generate_loop_piece(fn, [0, 2], None, random.Random(0))

    def test_verifies_without_live_slot(self):
        m = Module()
        fn = Function("main", 0, 0, [])
        m.add(fn)
        code = generate_loop_piece(fn, [0, 1, 1], None, random.Random(3))
        fn.code = code + [ins("const", 0), ins("ret")]
        verify_module(m)


class TestConditionCodegen:
    def build_twice_executed(self, piece_bits, seed=1):
        """main runs a site twice; local 1 changes, local 2 is stable."""
        m = Module()
        fn = Function("main", 0, 8, [])
        m.add(fn)
        prologue = [
            ins("const", 2), ins("store", 0),    # countdown
            ins("const", 10), ins("store", 1),   # changing var
            ins("const", 42), ins("store", 2),   # stable var
            label("site"),
        ]
        epilogue = [
            ins("iinc", 1, 5),                    # local 1 changes each pass
            ins("iinc", 0, -1),
            ins("load", 0),
            ins("ifgt", "site"),
            ins("const", 0),
            ins("ret"),
        ]
        # Build snapshots the way the tracer would see them.
        fn.code = prologue + epilogue
        trace = run_module(m, trace_mode="full").trace
        from repro.vm import SiteKey
        snapshots = trace.site_snapshots(SiteKey("main", "site"))
        wm = generate_condition_piece(
            fn, piece_bits, snapshots, live_slot=2, rng=random.Random(seed)
        )
        fn.code = prologue + wm + epilogue
        return m

    @pytest.mark.parametrize("seed", range(5))
    def test_piece_appears_contiguously(self, seed):
        rng = random.Random(seed + 200)
        piece = [rng.randint(0, 1) for _ in range(64)]
        m = self.build_twice_executed(piece, seed=seed)
        verify_module(m)
        bits, _ = run_and_decode(m)
        assert find_contiguous(bits, piece)

    def test_requires_two_executions(self):
        m = Module()
        fn = Function("main", 0, 4, [ins("const", 0), ins("ret")])
        m.add(fn)
        trace = run_module(m, trace_mode="full").trace
        from repro.vm import SiteKey
        snapshots = trace.site_snapshots(SiteKey("main", "<entry>"))
        with pytest.raises(CodegenError, match="fewer than twice"):
            generate_condition_piece(fn, [1] * 8, snapshots, None,
                                     random.Random(0))

    def test_requires_changing_variable_for_ones(self):
        from repro.vm.tracing import SiteKey, TracePoint
        snaps = [
            TracePoint(SiteKey("main", "s"), (1, 2), ()),
            TracePoint(SiteKey("main", "s"), (1, 2), ()),
        ]
        m = Module()
        fn = Function("main", 0, 4, [ins("const", 0), ins("ret")])
        m.add(fn)
        with pytest.raises(CodegenError, match="no variable changes"):
            generate_condition_piece(fn, [1, 0], snaps, None, random.Random(0))
        # All-zero pieces are fine with only stable variables.
        code = generate_condition_piece(fn, [0, 0], snaps, None,
                                        random.Random(0))
        assert code

    def test_find_predicate_variables(self):
        from repro.vm.tracing import SiteKey, TracePoint
        snaps = [
            TracePoint(SiteKey("m", "s"), (1, 5, 9), ()),
            TracePoint(SiteKey("m", "s"), (1, 6, 9), ()),
            TracePoint(SiteKey("m", "s"), (7, 7, 7), ()),  # ignored
        ]
        changing, stable = find_predicate_variables(snaps)
        assert changing == [1]
        assert stable == [0, 2]

    def test_predicates_only_reference_original_locals(self):
        piece = [1, 0, 1]
        m = self.build_twice_executed(piece)
        fn = m.functions["main"]
        for instr in fn.code:
            if instr.op == "load":
                assert instr.arg < fn.locals_count
