"""Hypothesis property tests for the codec layer.

Two families of invariants:

* **Round trip** — for every registered codec, ``decode(encode(v))``
  recovers ``v`` exactly, for arbitrary marks and widths, with the
  pieces planted in a junk-padded synthetic trace (the bit-level
  contract the embedders rely on).
* **Corruption envelope** — the Reed-Solomon codec corrects up to
  ``ec_bytes // 2`` corrupted symbols (valid-but-wrong sealed blocks,
  the worst case: junk corruption is merely an erasure), and *flags*
  anything beyond its capability as incomplete rather than reporting a
  wrong mark. "Fails closed" is the property; completing anyway with
  the right mark is allowed, lying is not.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bytecode_wm import WatermarkKey
from repro.codec import resolve_codec
from repro.codec.rs import RS_SYMBOL_TAG
from repro.codec.base import seal_symbol
from repro.core.bitstring import int_to_bits_lsb_first

CIPHER = WatermarkKey(secret=b"codec-props", inputs=[]).cipher()

_WIDTHS = st.sampled_from([16, 32, 64])
_SPECS = st.sampled_from(["gcrt", "rs-4", "rs-8", "hybrid-4"])


def _plant(blocks, rng):
    """Blocks laid into a trace with junk prefix/gaps, as embeds do."""
    bits = [rng.randint(0, 1) for _ in range(24)]
    for block in blocks:
        bits.extend(int_to_bits_lsb_first(block, 64))
        bits.extend(rng.randint(0, 1) for _ in range(rng.randint(0, 9)))
    return bits


@st.composite
def _marks(draw):
    width = draw(_WIDTHS)
    value = draw(st.integers(0, (1 << width) - 1))
    return width, value


@given(spec=_SPECS, mark=_marks(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_decode_inverts_encode(spec, mark, seed):
    width, value = mark
    codec = resolve_codec(spec)
    rng = random.Random(seed)
    pieces = codec.encode(
        value, width, codec.default_piece_count(width), CIPHER, rng
    )
    trace = _plant([p.block for p in pieces], rng)
    result = codec.decode(trace, width, CIPHER)
    assert result.complete
    assert result.value == value
    assert result.codec == codec.spec


@given(spec=_SPECS, mark=_marks(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_decode_order_invariant(spec, mark, seed):
    """Recovery cannot depend on the order pieces appear in the trace."""
    width, value = mark
    codec = resolve_codec(spec)
    rng = random.Random(seed)
    pieces = codec.encode(
        value, width, codec.default_piece_count(width), CIPHER, rng
    )
    blocks = [p.block for p in pieces]
    rng.shuffle(blocks)
    result = codec.decode(_plant(blocks, rng), width, CIPHER)
    assert result.complete
    assert result.value == value


@given(
    ec_bytes=st.sampled_from([4, 8, 16]),
    mark=_marks(),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_rs_survives_half_budget_corruption(ec_bytes, mark, seed):
    width, value = mark
    codec = resolve_codec(f"rs-{ec_bytes}")
    _, n = codec.layout(width)
    rng = random.Random(seed)
    # One copy per position: every corrupted block is an undisputed
    # wrong symbol, the hardest case (no second copy outvotes it).
    pieces = codec.encode(value, width, n, CIPHER, rng)
    blocks = [p.block for p in pieces]
    corrupt = rng.sample(range(n), rng.randint(1, ec_bytes // 2))
    for pos in corrupt:
        word = codec.codeword(value, width, CIPHER)
        wrong = (word[pos] + rng.randint(1, 255)) % 256
        blocks[pos] = seal_symbol(CIPHER, RS_SYMBOL_TAG, pos, wrong)
    result = codec.decode(_plant(blocks, rng), width, CIPHER)
    assert result.complete
    assert result.value == value
    # Corrected symbols cost confidence: a damaged decode never claims
    # the full-agreement score.
    assert result.confidence < 1.0


@given(
    ec_bytes=st.sampled_from([4, 8]),
    mark=_marks(),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_rs_flags_corruption_beyond_capability(ec_bytes, mark, seed):
    width, value = mark
    codec = resolve_codec(f"rs-{ec_bytes}")
    _, n = codec.layout(width)
    rng = random.Random(seed)
    pieces = codec.encode(value, width, n, CIPHER, rng)
    blocks = [p.block for p in pieces]
    word = codec.codeword(value, width, CIPHER)
    corrupt = rng.sample(range(n), rng.randint(ec_bytes // 2 + 1, n))
    for pos in corrupt:
        wrong = (word[pos] + rng.randint(1, 255)) % 256
        blocks[pos] = seal_symbol(CIPHER, RS_SYMBOL_TAG, pos, wrong)
    result = codec.decode(_plant(blocks, rng), width, CIPHER)
    # Beyond the guarantee the decode may still pull through (e.g. the
    # errata happen to be correctable) — but it must never lie.
    if result.complete:
        assert result.value == value


@given(
    spec=_SPECS, mark=_marks(), seed=st.integers(0, 2**32 - 1),
    keep=st.floats(0.0, 1.0),
)
@settings(max_examples=25, deadline=None)
def test_lossy_decode_never_misreports(spec, mark, seed, keep):
    """Under arbitrary piece loss every codec answers right or not at all."""
    width, value = mark
    codec = resolve_codec(spec)
    rng = random.Random(seed)
    pieces = codec.encode(
        value, width, codec.default_piece_count(width), CIPHER, rng
    )
    blocks = [p.block for p in pieces if rng.random() < keep]
    result = codec.decode(_plant(blocks, rng), width, CIPHER)
    if result.complete:
        assert result.value == value
