"""Unit and property tests for the XTEA block cipher and KDF."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cipher import BlockCipher, cipher_for_secret, derive_key

KEY = (0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210)


class TestBlockCipher:
    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            BlockCipher((1, 2, 3))

    def test_rejects_out_of_range_block(self):
        c = BlockCipher(KEY)
        with pytest.raises(ValueError):
            c.encrypt_block(1 << 64)
        with pytest.raises(ValueError):
            c.encrypt_block(-1)
        with pytest.raises(ValueError):
            c.decrypt_block(1 << 64)

    def test_known_permutation_properties(self):
        c = BlockCipher(KEY)
        assert c.encrypt_block(0) != 0
        assert c.encrypt_block(0) != c.encrypt_block(1)

    @given(st.integers(0, 2**64 - 1))
    def test_roundtrip(self, block):
        c = BlockCipher(KEY)
        assert c.decrypt_block(c.encrypt_block(block)) == block
        assert c.encrypt_block(c.decrypt_block(block)) == block

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_injective(self, a, b):
        c = BlockCipher(KEY)
        if a != b:
            assert c.encrypt_block(a) != c.encrypt_block(b)

    def test_key_sensitivity(self):
        c1 = BlockCipher(KEY)
        c2 = BlockCipher((KEY[0] ^ 1,) + KEY[1:])
        diffs = sum(
            1 for v in range(64) if c1.encrypt_block(v) != c2.encrypt_block(v)
        )
        assert diffs == 64

    def test_avalanche(self):
        """Flipping one plaintext bit flips roughly half the output bits."""
        c = BlockCipher(KEY)
        base = c.encrypt_block(0xDEADBEEFCAFEF00D)
        flipped = c.encrypt_block(0xDEADBEEFCAFEF00D ^ 1)
        hamming = bin(base ^ flipped).count("1")
        assert 16 <= hamming <= 48


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(b"secret") == derive_key(b"secret")

    def test_distinct_secrets_distinct_keys(self):
        assert derive_key(b"secret-a") != derive_key(b"secret-b")

    def test_empty_secret_allowed(self):
        words = derive_key(b"")
        assert len(words) == 4
        assert all(0 <= w < 2**32 for w in words)

    def test_length_extension_guard(self):
        # A secret and the same secret + padding byte must differ.
        assert derive_key(b"abc") != derive_key(b"abc\x80")

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            derive_key("not-bytes")  # type: ignore[arg-type]

    @given(st.binary(max_size=64))
    def test_words_in_range(self, secret):
        words = derive_key(secret)
        assert len(words) == 4
        assert all(0 <= w < 2**32 for w in words)


def test_cipher_for_secret_roundtrip():
    c = cipher_for_secret(b"pldi-2004")
    assert c.decrypt_block(c.encrypt_block(42)) == 42
