"""Tests for the shared preparation cache (repro.pipeline.prepare)."""

import pickle

import pytest

from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.core.planner import plan_redundancy
from repro.core.primes import choose_moduli
from repro.pipeline import (
    PrepareCache,
    PrepareError,
    PreparedProgram,
    prepare,
    prepare_fingerprint,
    resolve_piece_count,
)
from repro.vm import assemble, disassemble, run_module
from repro.workloads import collatz_module, gcd_module

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])

NONTERMINATING_SRC = """
.globals 0
.entry main
.func main params=0 locals=1
top:
    iinc 0 1
    goto top
.end
"""


class TestPrepare:
    def test_snapshot_contents(self):
        module = gcd_module()
        p = prepare(module, KEY, 16)
        assert p.watermark_bits == 16
        assert p.moduli == choose_moduli(16)
        assert p.pieces > 0
        assert p.trace.points and p.sites
        assert set(p.cfgs) == set(module.functions)
        assert p.baseline_output == run_module(module, KEY.inputs).output
        # Every prepared stage is individually timed.
        assert set(p.timings.stages) == {
            "verify", "trace", "cfg", "placement", "plan"
        }

    def test_original_module_isolated(self):
        module = gcd_module()
        p = prepare(module, KEY, 16)
        module.functions["main"].code.clear()
        # The snapshot still embeds fine after the caller mutates theirs.
        result = embed(p.module, 7, KEY, pieces=p.pieces,
                       watermark_bits=16, trace=p.trace, sites=p.sites)
        assert result.piece_count == p.pieces

    def test_rejects_bad_width(self):
        with pytest.raises(PrepareError):
            prepare(gcd_module(), KEY, 0)

    def test_rejects_untraceable_key(self):
        # collatz needs one input; an empty input sequence traps the VM.
        from repro.vm import VMError
        with pytest.raises(VMError):
            prepare(collatz_module(), WatermarkKey(b"k", []), 16)

    def test_piece_count_resolution(self):
        moduli, explicit = resolve_piece_count(16, pieces=9)
        assert explicit == 9
        _, planned = resolve_piece_count(16, piece_loss=0.3)
        assert planned == plan_redundancy(16, 0.3, 0.99).pieces
        _, default = resolve_piece_count(16)
        assert default == 2 * len(moduli)

    def test_planner_is_memoized(self):
        assert plan_redundancy(64, 0.25) is plan_redundancy(64, 0.25)


class TestPickleRoundTrip:
    def test_roundtrip_preserves_embedding(self, tmp_path):
        module = gcd_module()
        p = prepare(module, KEY, 16)
        p2 = pickle.loads(pickle.dumps(p))
        a = embed(module, 0xCAFE, KEY, pieces=p.pieces, watermark_bits=16,
                  trace=p.trace, sites=p.sites)
        b = embed(p2.module, 0xCAFE, KEY, pieces=p2.pieces,
                  watermark_bits=16, trace=p2.trace, sites=p2.sites)
        assert disassemble(a.module) == disassemble(b.module)

    def test_branch_events_rebind_to_pickled_module(self):
        p = pickle.loads(pickle.dumps(prepare(gcd_module(), KEY, 16)))
        instrs = {
            id(i) for fn in p.module.functions.values() for i in fn.code
        }
        assert p.trace.branches
        for event in p.trace.branches:
            assert id(event.branch) in instrs
            assert id(event.follower) in instrs

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "prep.pkl")
        p = prepare(gcd_module(), KEY, 16)
        p.save(path)
        loaded = PreparedProgram.load(path)
        assert loaded.matches(gcd_module(), KEY, 16)
        assert loaded.fingerprint() == p.fingerprint()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(PrepareError):
            PreparedProgram.load(str(path))
        path.write_bytes(pickle.dumps({"also": "wrong"}))
        with pytest.raises(PrepareError):
            PreparedProgram.load(str(path))

    def test_matches_detects_drift(self):
        p = prepare(gcd_module(), KEY, 16)
        assert p.matches(gcd_module(), KEY, 16)
        assert not p.matches(collatz_module(), KEY, 16)
        assert not p.matches(gcd_module(), KEY, 32)
        other = WatermarkKey(secret=b"other", inputs=[25, 10])
        assert not p.matches(gcd_module(), other, 16)
        assert not p.matches(gcd_module(), KEY, 16, pieces=p.pieces + 1)


class TestCachedEmbedEquivalence:
    """The cache must be invisible in the output modules."""

    def test_cached_equals_single_shot(self):
        module = gcd_module()
        p = prepare(module, KEY, 16)
        for watermark in (0, 0xCAFE, 0xFFFF):
            single = embed(module, watermark, KEY, pieces=p.pieces,
                           watermark_bits=16)
            cached = embed(module, watermark, KEY, pieces=p.pieces,
                           watermark_bits=16, trace=p.trace, sites=p.sites)
            assert disassemble(single.module) == disassemble(cached.module)

    def test_cached_embed_recognizes(self):
        module = collatz_module()
        key = WatermarkKey(secret=b"vendor", inputs=[27])
        p = prepare(module, key, 16)
        result = embed(module, 4242, key, pieces=p.pieces,
                       watermark_bits=16, trace=p.trace, sites=p.sites)
        found = recognize(result.module, key, watermark_bits=16)
        assert found.complete and found.value == 4242

    def test_recognize_accepts_cached_trace(self):
        module = gcd_module()
        marked = embed(module, 0xBEEF, KEY, watermark_bits=16).module
        run = run_module(marked, KEY.inputs, trace_mode="branch")
        via_cache = recognize(marked, KEY, watermark_bits=16,
                              trace=run.trace)
        fresh = recognize(marked, KEY, watermark_bits=16)
        assert via_cache.value == fresh.value == 0xBEEF

    def test_rng_salt_diversifies_but_stays_deterministic(self):
        module = gcd_module()
        p = prepare(module, KEY, 16)
        kw = dict(pieces=p.pieces, watermark_bits=16,
                  trace=p.trace, sites=p.sites)
        plain = embed(module, 7, KEY, **kw)
        salted = embed(module, 7, KEY, rng_salt="1", **kw)
        salted_again = embed(module, 7, KEY, rng_salt="1", **kw)
        assert disassemble(salted.module) == disassemble(salted_again.module)
        assert disassemble(salted.module) != disassemble(plain.module)
        # Salting never hurts recognition.
        assert recognize(salted.module, KEY, watermark_bits=16).value == 7


class TestPrepareCache:
    def test_hit_miss_accounting(self):
        cache = PrepareCache()
        a, hit = cache.get_or_prepare(gcd_module(), KEY, 16)
        assert not hit
        b, hit = cache.get_or_prepare(gcd_module(), KEY, 16)
        assert hit and b is a
        _, hit = cache.get_or_prepare(collatz_module(),
                                      WatermarkKey(b"v", [27]), 16)
        assert not hit
        assert cache.hits == 1 and cache.misses == 2

    def test_distinct_widths_distinct_entries(self):
        cache = PrepareCache()
        a, _ = cache.get_or_prepare(gcd_module(), KEY, 16)
        b, _ = cache.get_or_prepare(gcd_module(), KEY, 64)
        assert a is not b and a.watermark_bits != b.watermark_bits
        assert cache.misses == 2

    def test_eviction_bounds_memory(self):
        cache = PrepareCache(max_entries=1)
        cache.get_or_prepare(gcd_module(), KEY, 16)
        cache.get_or_prepare(gcd_module(), KEY, 32)
        assert len(cache) == 1
        _, hit = cache.get_or_prepare(gcd_module(), KEY, 16)
        assert not hit  # evicted

    def test_fingerprint_sensitive_to_all_inputs(self):
        base = prepare_fingerprint(gcd_module(), KEY, 16, None)
        assert base != prepare_fingerprint(gcd_module(), KEY, 32, None)
        assert base != prepare_fingerprint(gcd_module(), KEY, 16, 8)
        assert base != prepare_fingerprint(collatz_module(), KEY, 16, None)
        other = WatermarkKey(secret=b"pldi-2004", inputs=[25, 11])
        assert base != prepare_fingerprint(gcd_module(), other, 16, None)


class TestStepLimitDuringTrace:
    def test_prepare_raises_clear_error(self):
        module = assemble(NONTERMINATING_SRC)
        with pytest.raises(PrepareError) as exc:
            prepare(module, KEY, 16, max_steps=5_000)
        message = str(exc.value)
        assert "did not terminate" in message
        assert "step limit of 5000" in message

    def test_partial_trace_is_not_cached(self):
        # The key-input run exhausts max_steps mid-trace; the cache
        # must stay empty so a later call does not serve a truncated
        # trace as if preparation had succeeded.
        cache = PrepareCache()
        module = assemble(NONTERMINATING_SRC)
        with pytest.raises(PrepareError):
            cache.get_or_prepare(module, KEY, 16, max_steps=5_000)
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0
        with pytest.raises(PrepareError):
            cache.get_or_prepare(module, KEY, 16, max_steps=5_000)
        assert len(cache) == 0
        assert cache.misses == 2  # retried, not served from cache

    def test_generous_limit_still_succeeds(self):
        prepared = prepare(gcd_module(), KEY, 16, max_steps=1_000_000)
        assert prepared.trace.points
