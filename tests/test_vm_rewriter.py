"""Tests for the WVM rewriting helpers and method transforms."""

import pytest

from repro.attacks.bytecode.method_transforms import (
    inline_call,
    outline_region,
)
from repro.vm import (
    Function,
    Module,
    assemble,
    count_conditional_branches,
    freshen_template,
    ins,
    insert_at_site,
    label,
    rename_labels,
    run_module,
    site_index,
    verify_module,
)
from repro.vm.rewriter import RewriteError
from repro.vm.tracing import SiteKey


class TestRenameLabels:
    def test_renames_defined_and_used(self):
        template = [
            label("top"),
            ins("ifeq", "top"),
            ins("goto", "out"),
        ]
        renamed = rename_labels(template, {"top": "fresh_top"})
        assert renamed[0].arg == "fresh_top"
        assert renamed[1].arg == "fresh_top"
        assert renamed[2].arg == "out"  # unmapped labels untouched

    def test_copies_instructions(self):
        template = [ins("const", 1)]
        renamed = rename_labels(template, {})
        assert renamed[0] is not template[0]
        assert renamed[0].op == "const" and renamed[0].arg == 1


class TestFreshenTemplate:
    def test_defined_labels_get_fresh_names(self):
        fn = Function("f", 0, 0, [label("wm_0"), ins("const", 0),
                                  ins("ret")])
        template = [label("a"), ins("goto", "a")]
        out = freshen_template(fn, template)
        assert out[0].arg != "a"
        assert out[1].arg == out[0].arg
        assert out[0].arg != "wm_0"

    def test_references_to_outer_labels_survive(self):
        fn = Function("f", 0, 0, [label("outer"), ins("const", 0),
                                  ins("ret")])
        template = [ins("goto", "outer")]
        out = freshen_template(fn, template)
        assert out[0].arg == "outer"


class TestSiteInsertion:
    SRC = """
.entry main
.func main params=0 locals=1
    const 2
    store 0
site:
    iinc 0 -1
    load 0
    ifgt site
    const 0
    ret
.end
"""

    def test_insert_at_label_site(self):
        module = assemble(self.SRC)
        insert_at_site(module, SiteKey("main", "site"),
                       [ins("const", 42), ins("print")])
        verify_module(module)
        # Site executes twice -> two prints.
        assert run_module(module).output == [42, 42]

    def test_insert_at_entry(self):
        module = assemble(self.SRC)
        insert_at_site(module, SiteKey("main", "<entry>"),
                       [ins("const", 7), ins("print")])
        assert run_module(module).output == [7]

    def test_missing_site_raises(self):
        module = assemble(self.SRC)
        with pytest.raises(RewriteError, match="no trace site"):
            site_index(module.functions["main"], "ghost")

    def test_count_conditional_branches(self):
        module = assemble(self.SRC)
        assert count_conditional_branches(module) == 1


class TestInlineCall:
    SRC = """
.entry main
.func main params=0 locals=0
    const 6
    const 7
    call mul
    print
    const 0
    ret
.end
.func mul params=2 locals=2
    load 0
    load 1
    mul
    ret
.end
"""

    def test_inline_preserves_semantics(self):
        module = assemble(self.SRC)
        idx = next(i for i, instr in
                   enumerate(module.functions["main"].code)
                   if instr.op == "call")
        assert inline_call(module, "main", idx)
        verify_module(module)
        assert run_module(module).output == [42]
        # The call itself is gone from main.
        assert all(i.op != "call" for i in module.functions["main"].code)

    def test_inline_rejects_non_call(self):
        module = assemble(self.SRC)
        assert not inline_call(module, "main", 0)

    def test_inline_rejects_self_call(self):
        src = """
.entry main
.func main params=0 locals=0
    call main
    ret
.end
"""
        module = assemble(src)
        assert not inline_call(module, "main", 0)

    def test_inline_early_returns(self):
        src = """
.entry main
.func main params=0 locals=0
    const 5
    call sign
    print
    const -5
    call sign
    print
    const 0
    ret
.end
.func sign params=1 locals=1
    load 0
    ifge pos
    const -1
    ret
pos:
    const 1
    ret
.end
"""
        module = assemble(src)
        while True:
            sites = [i for i, instr in
                     enumerate(module.functions["main"].code)
                     if instr.op == "call"]
            if not sites:
                break
            assert inline_call(module, "main", sites[0])
        verify_module(module)
        assert run_module(module).output == [1, -1]


class TestOutlineRegion:
    def test_outlines_nop_runs(self):
        module = Module()
        module.add(Function("main", 0, 0, [
            ins("nop"), ins("nop"), ins("nop"),
            ins("const", 9), ins("print"), ins("const", 0), ins("ret"),
        ]))
        assert outline_region(module, "main")
        assert len(module.functions) == 2
        verify_module(module)
        assert run_module(module).output == [9]

    def test_no_region_returns_false(self):
        module = Module()
        module.add(Function("main", 0, 0,
                            [ins("const", 0), ins("ret")]))
        assert not outline_region(module, "main")
