"""Tests for the statistical-attack analysis module."""

from repro.analysis import (
    CodeStatistics,
    collect_statistics,
    distribution_distance,
    population_spread,
)
from repro.vm import Function, Module, ins
from repro.workloads import collatz_module, gcd_module


def tiny(ops):
    m = Module()
    m.add(Function("main", 0, 1, [ins(op, *args) for op, *args in ops]))
    return m


class TestCollectStatistics:
    def test_counts(self):
        m = tiny([("const", 1), ("const", 2), ("add",),
                  ("ifeq", "x"), ("label", "x"), ("const", 0), ("ret",)])
        stats = collect_statistics(m)
        assert stats.total_instructions == 6  # label excluded
        assert stats.opcode_counts["const"] == 3
        assert stats.conditional_branches == 1
        assert stats.functions == 1

    def test_branch_density(self):
        stats = collect_statistics(collatz_module())
        assert 0.0 < stats.branch_density < 0.5

    def test_empty_module(self):
        stats = CodeStatistics(
            opcode_counts={}, total_instructions=0,
            conditional_branches=0, functions=0,
        )
        assert stats.branch_density == 0.0
        assert stats.opcode_distribution() == {}


class TestDistances:
    def test_identity(self):
        a = collect_statistics(gcd_module())
        assert distribution_distance(a, a) == 0.0

    def test_symmetry_and_range(self):
        a = collect_statistics(gcd_module())
        b = collect_statistics(collatz_module())
        d1 = distribution_distance(a, b)
        d2 = distribution_distance(b, a)
        assert d1 == d2
        assert 0.0 <= d1 <= 1.0

    def test_disjoint_is_one(self):
        a = collect_statistics(tiny([("nop",), ("const", 0), ("ret",)]))
        b = collect_statistics(tiny([("pop",), ("dup",), ("halt",)]))
        import pytest
        assert distribution_distance(a, b) == pytest.approx(1.0)

    def test_population_spread(self):
        mods = [gcd_module(), collatz_module()]
        spread = population_spread(mods)
        assert spread == distribution_distance(
            collect_statistics(mods[0]), collect_statistics(mods[1])
        )
        assert population_spread([gcd_module()]) == 0.0
