"""Tests for the SLO engine (`repro.obs.slo`).

Per-kind met/breach logic, burn-rate arithmetic, evaluation windows,
the no-data convention, spec loading, and the engine's report shape —
all against hand-built event lists, no daemon required.
"""

import json

import pytest

from repro.obs.journal import Event
from repro.obs.slo import (
    Objective,
    SLOEngine,
    default_objectives,
    evaluate_objectives,
    load_objectives,
    percentile,
)


def http(route, status=200, seconds=0.1, unix=1000.0):
    return Event(kind="http.request", name=route, unix=unix,
                 attrs={"route": route, "status": status,
                        "seconds": seconds})


def recognize(complete, unix=1000.0):
    return Event(kind="recognize", name="d", unix=unix,
                 attrs={"complete": complete})


def retry(count, unix=1000.0):
    return Event(kind="batch.retry", name="round", unix=unix,
                 attrs={"count": count})


class TestObjectiveValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            Objective(name="x", kind="uptime", target=1.0)

    def test_rate_targets_bounded(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="error_rate", target=1.5)
        with pytest.raises(ValueError):
            Objective(name="x", kind="recovery_rate", target=-0.1)

    def test_positive_targets(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="latency_p95", target=0.0)
        with pytest.raises(ValueError):
            Objective(name="x", kind="retry_budget", target=-1.0)

    def test_window_positive_and_name_required(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="latency_p95", target=1.0,
                      window_seconds=0)
        with pytest.raises(ValueError):
            Objective(name="", kind="latency_p95", target=1.0)

    def test_round_trip(self):
        objective = Objective(name="x", kind="error_rate", target=0.05,
                              route="/v1/embed", window_seconds=60.0,
                              description="d")
        assert Objective.from_dict(objective.to_dict()) == objective


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.95) == 95
        assert percentile(values, 1.0) == 100
        assert percentile([7.0], 0.95) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestLatencyP95:
    OBJ = Objective(name="lat", kind="latency_p95", target=1.0,
                    route="/v1/embed")

    def test_met(self):
        events = [http("/v1/embed", seconds=0.2) for _ in range(20)]
        [status] = evaluate_objectives([self.OBJ], events)
        assert status.met and status.value == 0.2
        assert status.samples == 20 and status.burn_rate == 0.0

    def test_breached_with_burn(self):
        events = (
            [http("/v1/embed", seconds=0.1) for _ in range(10)]
            + [http("/v1/embed", seconds=5.0) for _ in range(10)]
        )
        [status] = evaluate_objectives([self.OBJ], events)
        assert not status.met and status.value == 5.0
        # half the requests over target / 5% allowance = burn 10
        assert status.burn_rate == pytest.approx(10.0)

    def test_route_filter(self):
        events = [http("/v1/recognize", seconds=9.0)]
        [status] = evaluate_objectives([self.OBJ], events)
        assert status.met and status.samples == 0


class TestErrorRate:
    OBJ = Objective(name="err", kind="error_rate", target=0.1)

    def test_met_counts_only_5xx(self):
        events = [http("/r", status=200), http("/r", status=404),
                  http("/r", status=429)]
        [status] = evaluate_objectives([self.OBJ], events)
        assert status.met and status.value == 0.0

    def test_breached(self):
        events = [http("/r", status=500)] + [http("/r")] * 3
        [status] = evaluate_objectives([self.OBJ], events)
        assert not status.met
        assert status.value == 0.25
        assert status.burn_rate == pytest.approx(2.5)

    def test_zero_target_with_failures_burns_infinite(self):
        objective = Objective(name="err0", kind="error_rate", target=0.0)
        [status] = evaluate_objectives([objective],
                                       [http("/r", status=503)])
        assert not status.met
        assert status.burn_rate == float("inf")


class TestRecoveryRate:
    OBJ = Objective(name="rec", kind="recovery_rate", target=0.75)

    def test_met(self):
        events = [recognize(True)] * 3 + [recognize(False)]
        [status] = evaluate_objectives([self.OBJ], events)
        assert status.met and status.value == 0.75

    def test_breached_with_burn(self):
        events = [recognize(True)] + [recognize(False)]
        [status] = evaluate_objectives([self.OBJ], events)
        assert not status.met
        # 50% miss vs 25% allowed = burn 2
        assert status.burn_rate == pytest.approx(2.0)


class TestRetryBudget:
    OBJ = Objective(name="rb", kind="retry_budget", target=5.0)

    def test_met_sums_counts(self):
        [status] = evaluate_objectives([self.OBJ], [retry(2), retry(3)])
        assert status.met and status.value == 5.0
        assert status.burn_rate == pytest.approx(1.0)

    def test_breached(self):
        [status] = evaluate_objectives([self.OBJ], [retry(11)])
        assert not status.met and status.burn_rate == pytest.approx(2.2)


def dispatch(outcome, route="/v1/embed", seconds=0.1, unix=1000.0):
    return Event(kind="fleet.dispatch", name="job", unix=unix,
                 attrs={"route": route, "outcome": outcome,
                        "seconds": seconds})


class TestFleetErrorRate:
    OBJ = Objective(name="fer", kind="fleet_error_rate", target=0.5)

    def test_self_healing_outcomes_are_not_errors(self):
        # Requeues and superseded stragglers are the machinery doing
        # its job, not caller-visible failures: they must not count
        # as samples at all.
        events = [dispatch("ok"), dispatch("requeued"),
                  dispatch("requeued"), dispatch("superseded")]
        [status] = evaluate_objectives([self.OBJ], events)
        assert status.met and status.value == 0.0
        assert status.samples == 1

    def test_terminal_failures_breach(self):
        events = [dispatch("ok"), dispatch("error"), dispatch("error"),
                  dispatch("brownout")]
        [status] = evaluate_objectives([self.OBJ], events)
        assert not status.met
        assert status.value == 0.75
        assert status.burn_rate == pytest.approx(1.5)

    def test_shed_and_brownout_count_against_the_budget(self):
        events = [dispatch("shed"), dispatch("brownout")]
        [status] = evaluate_objectives([self.OBJ], events)
        assert status.value == 1.0 and status.samples == 2

    def test_route_filter(self):
        objective = Objective(name="fer", kind="fleet_error_rate",
                              target=0.5, route="/v1/recognize")
        events = [dispatch("error", route="/v1/embed")]
        [status] = evaluate_objectives([objective], events)
        assert status.met and status.samples == 0

    def test_target_is_a_bounded_rate(self):
        with pytest.raises(ValueError):
            Objective(name="x", kind="fleet_error_rate", target=1.5)
        with pytest.raises(ValueError):
            Objective(name="x", kind="fleet_error_rate", target=-0.1)

    def test_default_set_judges_the_fleet(self):
        names = {o.name: o for o in default_objectives()}
        assert names["fleet-error-rate"].kind == "fleet_error_rate"
        assert names["fleet-dispatch-p95"].kind == "dispatch_p95"


class TestWindowing:
    def test_old_events_age_out(self):
        objective = Objective(name="err", kind="error_rate", target=0.1,
                              window_seconds=60.0)
        old_failure = http("/r", status=500, unix=100.0)
        recent_ok = [http("/r", unix=1000.0 + i) for i in range(3)]
        [status] = evaluate_objectives([objective],
                                       [old_failure] + recent_ok)
        assert status.met and status.samples == 3

    def test_now_defaults_to_newest_event(self):
        objective = Objective(name="err", kind="error_rate", target=0.1,
                              window_seconds=60.0)
        # A historical journal: evaluating long after the fact must
        # not see an empty window.
        events = [http("/r", status=500, unix=50.0),
                  http("/r", unix=80.0)]
        [status] = evaluate_objectives([objective], events)
        assert status.samples == 2 and not status.met

    def test_explicit_now(self):
        objective = Objective(name="err", kind="error_rate", target=0.1,
                              window_seconds=60.0)
        events = [http("/r", status=500, unix=50.0)]
        [status] = evaluate_objectives([objective], events, now=500.0)
        assert status.met and status.samples == 0


class TestNoData:
    @pytest.mark.parametrize("kind,target", [
        ("latency_p95", 1.0), ("error_rate", 0.1),
        ("recovery_rate", 0.9), ("retry_budget", 5.0),
        ("dispatch_p95", 1.0), ("fleet_error_rate", 0.1),
    ])
    def test_empty_window_is_met_with_zero_samples(self, kind, target):
        objective = Objective(name="x", kind=kind, target=target)
        [status] = evaluate_objectives([objective], [])
        assert status.met and status.samples == 0
        assert status.value is None and status.burn_rate == 0.0
        assert "no data" in status.detail


class TestSpecLoading:
    def test_round_trip(self, tmp_path):
        spec = tmp_path / "slo.json"
        originals = default_objectives()
        spec.write_text(json.dumps(
            {"objectives": [o.to_dict() for o in originals]}
        ))
        assert load_objectives(str(spec)) == originals

    def test_malformed_document(self, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({"slos": []}))
        with pytest.raises(ValueError, match="objectives"):
            load_objectives(str(spec))

    def test_bad_objective_is_loud(self, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps(
            {"objectives": [{"name": "x", "kind": "nope", "target": 1}]}
        ))
        with pytest.raises(ValueError, match="bad objective"):
            load_objectives(str(spec))

    def test_empty_spec_is_an_error(self, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({"objectives": []}))
        with pytest.raises(ValueError, match="no objectives"):
            load_objectives(str(spec))


class TestEngine:
    def test_report_shape(self):
        engine = SLOEngine([
            Objective(name="err", kind="error_rate", target=0.1),
            Objective(name="rec", kind="recovery_rate", target=0.9),
        ])
        report = engine.report([http("/r", status=500),
                                recognize(True)])
        assert report["met"] is False
        assert report["breached"] == ["err"]
        assert report["max_burn_rate"] == pytest.approx(10.0)
        assert len(report["objectives"]) == 2

    def test_default_engine_needs_no_arguments(self):
        engine = SLOEngine()
        names = [o.name for o in engine.objectives]
        assert "embed-latency-p95" in names
        assert engine.report([])["met"] is True

    def test_empty_objective_list_rejected(self):
        with pytest.raises(ValueError):
            SLOEngine([])

    def test_summary_flags_breaches(self):
        engine = SLOEngine([
            Objective(name="err", kind="error_rate", target=0.1),
        ])
        statuses = engine.evaluate([http("/r", status=500)])
        text = SLOEngine.summary(statuses)
        assert "FAIL" in text and "err" in text
        statuses = engine.evaluate([http("/r")])
        assert "ok " in SLOEngine.summary(statuses)
