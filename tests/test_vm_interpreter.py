"""Tests for the WVM interpreter: semantics, traps, tracing."""

import pytest

from repro.vm import VMError, assemble, run_module, wrap64


def run_src(src, inputs=(), trace_mode=None, max_steps=10_000_000):
    return run_module(assemble(src), inputs, trace_mode, max_steps)


def main_wrapping(body):
    return f".entry main\n.func main params=0 locals=8\n{body}\n.end\n"


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 6, -24),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),   # truncation toward zero (Java long)
            ("div", 7, -2, -3),
            ("mod", 7, 2, 1),
            ("mod", -7, 2, -1),   # sign follows the dividend
            ("band", 0b1100, 0b1010, 0b1000),
            ("bor", 0b1100, 0b1010, 0b1110),
            ("bxor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("shr", -16, 2, -4),  # arithmetic shift
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        out = run_src(main_wrapping(
            f"    const {a}\n    const {b}\n    {op}\n    print\n"
            "    const 0\n    ret"
        ))
        assert out.output == [expected]

    def test_neg_and_bnot(self):
        out = run_src(main_wrapping(
            "    const 5\n    neg\n    print\n"
            "    const 5\n    bnot\n    print\n    const 0\n    ret"
        ))
        assert out.output == [-5, -6]

    def test_division_by_zero_traps(self):
        with pytest.raises(VMError, match="division by zero"):
            run_src(main_wrapping(
                "    const 1\n    const 0\n    div\n    const 0\n    ret"
            ))

    def test_mod_by_zero_traps(self):
        with pytest.raises(VMError, match="modulo by zero"):
            run_src(main_wrapping(
                "    const 1\n    const 0\n    mod\n    const 0\n    ret"
            ))

    def test_64bit_wraparound(self):
        out = run_src(main_wrapping(
            "    const 0x7fffffffffffffff\n    const 1\n    add\n"
            "    print\n    const 0\n    ret"
        ))
        assert out.output == [-(1 << 63)]
        assert wrap64((1 << 63) - 1 + 1) == -(1 << 63)


class TestStackAndLocals:
    def test_dup_pop_swap(self):
        out = run_src(main_wrapping(
            "    const 1\n    const 2\n    swap\n    print\n    print\n"
            "    const 7\n    dup\n    pop\n    print\n    const 0\n    ret"
        ))
        assert out.output == [1, 2, 7]

    def test_load_store_iinc(self):
        out = run_src(main_wrapping(
            "    const 10\n    store 3\n    iinc 3 -4\n    load 3\n"
            "    print\n    const 0\n    ret"
        ))
        assert out.output == [6]

    def test_globals(self):
        src = (
            ".globals 2\n.entry main\n"
            ".func main params=0 locals=0\n"
            "    const 42\n    gstore 1\n    gload 1\n    print\n"
            "    const 0\n    ret\n.end\n"
        )
        assert run_src(src).output == [42]

    def test_uninitialized_locals_are_zero(self):
        out = run_src(main_wrapping("    load 5\n    print\n    const 0\n    ret"))
        assert out.output == [0]


class TestControlFlow:
    GCD = """
.entry main
.func main params=0 locals=0
    const 25
    const 10
    call gcd
    print
    const 0
    ret
.end
.func gcd params=2 locals=3
loop:
    load 0
    load 1
    mod
    ifeq done
    load 1
    store 2
    load 0
    load 1
    mod
    store 1
    load 2
    store 0
    goto loop
done:
    load 1
    ret
.end
"""

    def test_gcd(self):
        assert run_src(self.GCD).output == [5]

    def test_conditionals(self):
        for op, a, b, taken in [
            ("if_icmpeq", 3, 3, True), ("if_icmpeq", 3, 4, False),
            ("if_icmpne", 3, 4, True), ("if_icmplt", 2, 3, True),
            ("if_icmple", 3, 3, True), ("if_icmpgt", 4, 3, True),
            ("if_icmpge", 2, 3, False),
        ]:
            out = run_src(main_wrapping(
                f"    const {a}\n    const {b}\n    {op} yes\n"
                "    const 0\n    print\n    goto end\n"
                "yes:\n    const 1\n    print\n"
                "end:\n    const 0\n    ret"
            ))
            assert out.output == [1 if taken else 0], (op, a, b)

    def test_zero_conditionals(self):
        for op, a, taken in [
            ("ifeq", 0, True), ("ifne", 1, True), ("iflt", -1, True),
            ("ifle", 0, True), ("ifgt", 1, True), ("ifge", -1, False),
        ]:
            out = run_src(main_wrapping(
                f"    const {a}\n    {op} yes\n"
                "    const 0\n    print\n    goto end\n"
                "yes:\n    const 1\n    print\n"
                "end:\n    const 0\n    ret"
            ))
            assert out.output == [1 if taken else 0], (op, a)

    def test_step_limit(self):
        src = main_wrapping("spin:\n    goto spin")
        with pytest.raises(VMError, match="step limit"):
            run_src(src, max_steps=1000)

    def test_recursion(self):
        src = """
.entry main
.func main params=0 locals=0
    const 10
    call fib
    print
    const 0
    ret
.end
.func fib params=1 locals=1
    load 0
    const 2
    if_icmpge rec
    load 0
    ret
rec:
    load 0
    const 1
    sub
    call fib
    load 0
    const 2
    sub
    call fib
    add
    ret
.end
"""
        assert run_src(src).output == [55]

    def test_stack_overflow_traps(self):
        src = """
.entry main
.func main params=0 locals=0
    call f
    ret
.end
.func f params=0 locals=0
    call f
    ret
.end
"""
        with pytest.raises(VMError, match="overflow"):
            run_src(src)


class TestArraysAndIO:
    def test_array_roundtrip(self):
        out = run_src(main_wrapping(
            "    const 3\n    newarray\n    store 0\n"
            "    load 0\n    const 1\n    const 99\n    astore\n"
            "    load 0\n    const 1\n    aload\n    print\n"
            "    load 0\n    alen\n    print\n    const 0\n    ret"
        ))
        assert out.output == [99, 3]

    def test_array_bounds_trap(self):
        with pytest.raises(VMError, match="out of bounds"):
            run_src(main_wrapping(
                "    const 2\n    newarray\n    const 5\n    aload\n"
                "    const 0\n    ret"
            ))

    def test_bad_reference_traps(self):
        with pytest.raises(VMError, match="bad array reference"):
            run_src(main_wrapping(
                "    const 7\n    const 0\n    aload\n    const 0\n    ret"
            ))

    def test_input_sequence(self):
        out = run_src(main_wrapping(
            "    input\n    input\n    add\n    print\n    const 0\n    ret"
        ), inputs=[30, 12])
        assert out.output == [42]

    def test_input_exhaustion_traps(self):
        with pytest.raises(VMError, match="exhausted"):
            run_src(main_wrapping("    input\n    print\n    const 0\n    ret"))

    def test_halt_stops_everything(self):
        out = run_src(main_wrapping(
            "    const 1\n    print\n    halt\n    const 2\n    print\n"
            "    const 0\n    ret"
        ))
        assert out.output == [1]
        assert out.halted


class TestTracing:
    BRANCHY = """
.entry main
.func main params=0 locals=2
    const 3
    store 0
loop:
    load 0
    ifeq done
    iinc 0 -1
    goto loop
done:
    const 0
    ret
.end
"""

    def test_no_trace_by_default(self):
        assert run_src(self.BRANCHY).trace is None

    def test_branch_trace(self):
        result = run_src(self.BRANCHY, trace_mode="branch")
        trace = result.trace
        assert trace is not None
        # ifeq runs 4 times: not-taken x3, then taken.
        assert len(trace.branches) == 4
        assert [e.taken for e in trace.branches] == [False] * 3 + [True]
        # Same static instruction each time.
        assert len({id(e.branch) for e in trace.branches}) == 1
        # Branch mode records no site snapshots.
        assert trace.points == []

    def test_full_trace_snapshots(self):
        result = run_src(self.BRANCHY, trace_mode="full")
        trace = result.trace
        counts = trace.site_counts()
        from repro.vm import SiteKey
        assert counts[SiteKey("main", "loop")] == 4
        assert counts[SiteKey("main", "done")] == 1
        assert counts[SiteKey("main", "<entry>")] == 1
        # Local 0 counts down 3,2,1,0 at the loop head.
        snaps = trace.site_snapshots(SiteKey("main", "loop"))
        assert [s.locals_snapshot[0] for s in snaps] == [3, 2, 1, 0]

    def test_branch_pairs_feed_decoder(self):
        from repro.core.bitstring import decode_bits
        result = run_src(self.BRANCHY, trace_mode="branch")
        bits = decode_bits(result.trace.branch_pairs())
        # First occurrence: 0. Next two go the same way: 0, 0. Final
        # taken execution goes the other way: 1.
        assert bits == [0, 0, 0, 1]

    def test_steps_metric_counts_real_instructions(self):
        result = run_src(self.BRANCHY)
        # const,store + 3*(load,ifeq,iinc,goto) + (load,ifeq) + const,ret
        assert result.steps == 2 + 3 * 4 + 2 + 2
