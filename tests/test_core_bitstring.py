"""Tests for the trace bit-string decoder (Section 3.1).

The decoder's defining property is invariance under the static attacks
the paper enumerates: code reordering, branch sense inversion, and
insertion of non-branch instructions. Those invariances are exercised
here abstractly (on event streams); the end-to-end versions on real VM
programs live in tests/test_attacks_bytecode.py.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.bitstring import (
    bits_to_int_lsb_first,
    decode_bits,
    int_to_bits_lsb_first,
    sliding_windows,
)


class TestDecodeBits:
    def test_empty(self):
        assert decode_bits([]) == []

    def test_first_occurrence_is_zero(self):
        assert decode_bits([("b1", "x")]) == [0]

    def test_same_follower_zero_else_one(self):
        events = [("b", "x"), ("b", "x"), ("b", "y"), ("b", "x")]
        assert decode_bits(events) == [0, 0, 1, 0]

    def test_independent_branches(self):
        events = [("a", "x"), ("b", "y"), ("a", "z"), ("b", "y")]
        assert decode_bits(events) == [0, 0, 1, 0]

    def test_none_follower_is_a_value(self):
        events = [("a", None), ("a", None), ("a", "x")]
        assert decode_bits(events) == [0, 0, 1]

    def test_branch_identity_renaming_invariance(self):
        """Renaming branch identities (code reordering) preserves bits."""
        events = [("a", "x"), ("b", "y"), ("a", "y"), ("b", "y")]
        renamed = [(f"moved-{b}", f) for b, f in events]
        assert decode_bits(events) == decode_bits(renamed)

    def test_sense_inversion_invariance(self):
        """Flipping a branch swaps its followers consistently: bits equal."""
        events = [("a", "T"), ("a", "F"), ("a", "T"), ("a", "F")]
        flipped = [("a", {"T": "F", "F": "T"}[f]) for _, f in events]
        assert decode_bits(events) == decode_bits(flipped)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=200
        )
    )
    def test_output_is_bits_and_same_length(self, events):
        bits = decode_bits(events)
        assert len(bits) == len(events)
        assert set(bits) <= {0, 1}

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=100)
    )
    def test_local_effect_of_branch_insertion(self, events):
        """Inserting a fresh branch's events adds bits without altering
        the bits contributed by existing events (the insertion is only
        local, as Section 3.1 claims)."""
        fresh = [("fresh-branch", 0), ("fresh-branch", 1)]
        cut = len(events) // 2
        spliced = events[:cut] + fresh + events[cut:]
        original = decode_bits(events)
        modified = decode_bits(spliced)
        assert modified[:cut] == original[:cut]
        assert modified[cut + len(fresh):] == original[cut:]


class TestBitPacking:
    def test_lsb_first(self):
        assert bits_to_int_lsb_first([0, 1, 0, 1]) == 0b1010
        assert int_to_bits_lsb_first(0b1010, 4) == [0, 1, 0, 1]

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int_lsb_first([0, 2])

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits_lsb_first(16, 4)
        with pytest.raises(ValueError):
            int_to_bits_lsb_first(-1, 4)

    @given(st.integers(0, 2**64 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int_lsb_first(int_to_bits_lsb_first(value, 64)) == value


class TestSlidingWindows:
    def test_too_short_yields_nothing(self):
        assert list(sliding_windows([0, 1], 4)) == []

    def test_exact_width(self):
        assert list(sliding_windows([1, 0, 1, 0], 4)) == [(0, 0b0101)]

    def test_offsets_and_values(self):
        bits = [1, 1, 0, 0, 1]
        got = list(sliding_windows(bits, 3))
        assert got == [(0, 0b011), (1, 0b001), (2, 0b100)]

    @given(st.lists(st.integers(0, 1), min_size=64, max_size=300))
    def test_incremental_matches_naive(self, bits):
        naive = [
            (t, bits_to_int_lsb_first(bits[t:t + 64]))
            for t in range(len(bits) - 63)
        ]
        assert list(sliding_windows(bits, 64)) == naive
