"""Tests for the tooling layer: trace files, the redundancy planner,
native listings, and the command-line interface."""

import io
import json

import pytest

from repro.cli import main as cli_main
from repro.core.planner import (
    RedundancyPlan,
    plan_redundancy,
    plan_table,
    success_probability_for_pieces,
)
from repro.core.primes import choose_moduli
from repro.core.bitstring import decode_bits
from repro.native.listing import format_data_words, format_listing
from repro.vm import run_module
from repro.vm.trace_io import TraceFormatError, dump_trace, load_trace
from repro.workloads import collatz_module, gcd_module


class TestTraceIO:
    def _roundtrip(self, module, inputs, mode):
        result = run_module(module, inputs, trace_mode=mode)
        buf = io.StringIO()
        dump_trace(result.trace, module, buf)
        buf.seek(0)
        return result.trace, load_trace(buf, module)

    def test_branch_trace_roundtrip(self):
        module = collatz_module()
        original, loaded = self._roundtrip(module, [27], "branch")
        assert len(loaded.branches) == len(original.branches)
        # The decoded bit-string is identical - identity rebinding works.
        assert decode_bits(loaded.branch_pairs()) == \
            decode_bits(original.branch_pairs())
        # Events bind to the *same* instruction objects.
        assert all(
            a.branch is b.branch
            for a, b in zip(original.branches, loaded.branches)
        )

    def test_full_trace_roundtrip(self):
        module = gcd_module()
        original, loaded = self._roundtrip(module, [25, 10], "full")
        assert [p.key for p in loaded.points] == \
            [p.key for p in original.points]
        assert [p.locals_snapshot for p in loaded.points] == \
            [p.locals_snapshot for p in original.points]

    def test_rejects_garbage(self):
        module = gcd_module()
        with pytest.raises(TraceFormatError, match="not a trace file"):
            load_trace(io.StringIO("definitely not json{"), module)

    def test_rejects_wrong_version(self):
        module = gcd_module()
        doc = {"version": 99, "points": [], "branches": []}
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(io.StringIO(json.dumps(doc)), module)

    def test_rejects_mismatched_module(self):
        module = collatz_module()
        result = run_module(module, [27], trace_mode="branch")
        buf = io.StringIO()
        dump_trace(result.trace, module, buf)
        buf.seek(0)
        with pytest.raises(TraceFormatError, match="missing instruction"):
            load_trace(buf, gcd_module())

    def test_trace_file_feeds_recognition(self, tmp_path):
        """Recognition from a stored trace (the paper's trace files)."""
        from repro.bytecode_wm import WatermarkKey, embed, recognize_bits
        key = WatermarkKey(secret=b"io", inputs=[27])
        marked = embed(collatz_module(), 0xAB, key, watermark_bits=8)
        result = run_module(marked.module, key.inputs, trace_mode="branch")
        path = tmp_path / "trace.json"
        with open(path, "w") as fp:
            dump_trace(result.trace, marked.module, fp)
        with open(path) as fp:
            loaded = load_trace(fp, marked.module)
        found = recognize_bits(
            decode_bits(loaded.branch_pairs()), key, watermark_bits=8
        )
        assert found.value == 0xAB


class TestPlanner:
    def test_basic_plan(self):
        plan = plan_redundancy(128, 0.5, 0.99)
        assert isinstance(plan, RedundancyPlan)
        assert plan.expected_success >= 0.99
        assert plan.pieces >= plan.moduli_count - 1

    def test_minimality(self):
        plan = plan_redundancy(128, 0.5, 0.99)
        n = plan.moduli_count
        below = success_probability_for_pieces(n, plan.pieces - 1, 0.5)
        assert below < 0.99

    def test_zero_loss_needs_coverage_only(self):
        plan = plan_redundancy(64, 0.0, 0.99)
        n = plan.moduli_count
        # With no losses, the minimum is coverage of all n moduli.
        assert plan.pieces <= (n * (n - 1)) // 2
        assert plan.expected_success == pytest.approx(1.0)

    def test_higher_loss_needs_more_pieces(self):
        low = plan_redundancy(128, 0.2)
        high = plan_redundancy(128, 0.7)
        assert high.pieces > low.pieces

    def test_higher_target_needs_more_pieces(self):
        loose = plan_redundancy(128, 0.5, 0.9)
        tight = plan_redundancy(128, 0.5, 0.999)
        assert tight.pieces >= loose.pieces

    def test_unreachable_target(self):
        with pytest.raises(ValueError, match="unreachable"):
            plan_redundancy(128, 0.999, 0.999999, max_pieces=32)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            plan_redundancy(64, 1.0)
        with pytest.raises(ValueError):
            plan_redundancy(64, 0.5, 1.5)

    def test_plan_table(self):
        plans = plan_table(64, [0.1, 0.5])
        assert len(plans) == 2
        assert plans[1].pieces >= plans[0].pieces

    def test_model_matches_monte_carlo(self):
        """The planner's analytic model vs direct simulation."""
        import random
        from math import comb
        bits, loss, pieces = 64, 0.5, 30
        n = len(choose_moduli(bits))
        analytic = success_probability_for_pieces(n, pieces, loss)
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng = random.Random(0)
        wins = 0
        trials = 2000
        for _ in range(trials):
            covered = set()
            for k in range(pieces):
                if rng.random() >= loss:
                    i, j = edges[k % len(edges)]
                    covered.add(i)
                    covered.add(j)
            wins += len(covered) == n
        assert abs(analytic - wins / trials) < 0.05


class TestListing:
    def test_format_listing(self):
        from repro.lang.codegen_native import compile_source_native
        image = compile_source_native(
            "fn main() { print(1 + 2); return 0; }"
        )
        text = format_listing(image)
        assert "main:" in text
        assert "ret" in text
        assert f"{image.entry:#010x}" in text

    def test_branch_annotation(self):
        from repro.lang.codegen_native import compile_source_native
        image = compile_source_native(
            "fn f() { return 1; } fn main() { print(f()); return 0; }"
        )
        text = format_listing(image)
        assert "; -> f" in text

    def test_truncation(self):
        from repro.workloads.spec import spec_native
        image = spec_native("mcf")
        text = format_listing(image, max_instructions=10)
        assert "truncated" in text

    def test_data_words(self):
        from repro.lang.codegen_native import compile_source_native
        image = compile_source_native(
            "global g; fn main() { g = 7; print(g); return 0; }"
        )
        out = format_data_words(image, image.symbol("g_g"), 2)
        assert "g_g" in out


class TestCLI:
    WEE = ("fn gcd(a, b) { while (a % b != 0) { var t = a % b; a = b; "
           "b = t; } return b; }\n"
           "fn main() { print(gcd(input(), input())); return 0; }\n")

    @pytest.fixture()
    def workspace(self, tmp_path):
        src = tmp_path / "app.wee"
        src.write_text(self.WEE)
        asm = tmp_path / "app.wasm"
        assert cli_main(["compile", str(src), "-o", str(asm)]) == 0
        return tmp_path, asm

    def test_compile_and_run(self, workspace, capsys):
        _tmp, asm = workspace
        assert cli_main(["run", str(asm), "--inputs", "25,10"]) == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_embed_recognize_cycle(self, workspace, capsys):
        tmp, asm = workspace
        marked = tmp / "marked.wasm"
        rc = cli_main([
            "embed", str(asm), "-o", str(marked),
            "--watermark", "0xBEEF", "--bits", "16",
            "--secret", "vendor", "--inputs", "25,10", "--pieces", "8",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main([
            "recognize", str(marked),
            "--bits", "16", "--secret", "vendor", "--inputs", "25,10",
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "0xbeef"

    def test_recognize_unmarked_fails(self, workspace, capsys):
        _tmp, asm = workspace
        rc = cli_main([
            "recognize", str(asm),
            "--bits", "16", "--secret", "vendor", "--inputs", "25,10",
        ])
        assert rc == 1

    def test_attack_then_recognize(self, workspace, capsys):
        tmp, asm = workspace
        marked = tmp / "marked.wasm"
        attacked = tmp / "attacked.wasm"
        cli_main([
            "embed", str(asm), "-o", str(marked),
            "--watermark", "0xBEEF", "--bits", "16",
            "--secret", "vendor", "--inputs", "25,10", "--pieces", "8",
        ])
        rc = cli_main([
            "attack", str(marked), "-o", str(attacked),
            "--transform", "block-reordering",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main([
            "recognize", str(attacked),
            "--bits", "16", "--secret", "vendor", "--inputs", "25,10",
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "0xbeef"

    def test_embed_with_diversification(self, workspace, capsys):
        tmp, asm = workspace
        marked = tmp / "div.wasm"
        rc = cli_main([
            "embed", str(asm), "-o", str(marked),
            "--watermark", "7", "--bits", "8",
            "--secret", "v", "--inputs", "25,10",
            "--diversify", "42",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main([
            "recognize", str(marked),
            "--bits", "8", "--secret", "v", "--inputs", "25,10",
        ])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "0x7"

    def test_plan(self, capsys):
        assert cli_main(["plan", "--bits", "128", "--loss", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "pieces to embed" in out
