"""Tests for the sharded artifact fabric (`repro.serve.fabric`)."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import prepare
from repro.serve.fabric import (
    FABRIC_MANIFEST,
    HashRing,
    ShardedArtifactStore,
    is_fabric,
    open_store,
)
from repro.serve.store import ArtifactStore, StoreError
from repro.workloads import collatz_module, gcd_module

KEY = WatermarkKey(secret=b"fabric-key", inputs=[25, 10])
BITS = 16
PIECES = 8


@pytest.fixture(autouse=True)
def _isolated_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(scope="module")
def prepared():
    return prepare(gcd_module(), KEY, BITS, PIECES)


@pytest.fixture()
def fabric(tmp_path):
    return ShardedArtifactStore(str(tmp_path / "fabric"), shards=3)


_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=1, max_size=6, unique=True,
)


class TestHashRing:
    @given(shards=_names, key=st.text(min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_route_deterministic_in_membership_set(self, shards, key):
        # Insertion order must not matter: the ring is a function of
        # the membership *set*.
        forward = HashRing(shards)
        backward = HashRing(list(reversed(shards)))
        assert forward.route(key) == backward.route(key)

    @given(shards=_names, keys=st.lists(st.text(min_size=1, max_size=32),
                                        min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_growing_moves_only_to_the_new_shard(self, shards, keys):
        # Consistent hashing's whole point: adding a shard relocates
        # keys only *onto* the newcomer, never between old shards.
        ring = HashRing(shards)
        grown = ring.with_shard("zz-new")
        for key in keys:
            before, after = ring.route(key), grown.route(key)
            if after != before:
                assert after == "zz-new"

    @given(shards=_names, keys=st.lists(st.text(min_size=1, max_size=32),
                                        min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_remove_is_the_inverse_of_add(self, shards, keys):
        ring = HashRing(shards)
        roundtripped = ring.with_shard("zz-new").without_shard("zz-new")
        for key in keys:
            assert ring.route(key) == roundtripped.route(key)

    def test_duplicate_shards_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a", "a"])

    def test_empty_ring_routes_nowhere(self):
        with pytest.raises(StoreError, match="no shards"):
            HashRing([]).route("anything")


class TestFabricStore:
    def test_put_load_roundtrip_routes_to_one_shard(self, fabric, prepared):
        record = fabric.put(prepared, label="gcd v1")
        assert record.digest == prepared.fingerprint()
        assert fabric.load(record.digest).fingerprint() == record.digest
        owner = fabric.route(record.digest)
        # The blob lives on exactly the shard the ring names.
        assert record.digest in fabric.shard(owner)
        others = [n for n in fabric.shard_names if n != owner]
        assert all(record.digest not in fabric.shard(n) for n in others)

    def test_get_or_prepare_hits_across_reopen(self, tmp_path, prepared):
        root = str(tmp_path / "fabric")
        fabric = ShardedArtifactStore(root, shards=2)
        _, hit = fabric.get_or_prepare(gcd_module(), KEY, BITS, pieces=PIECES)
        assert not hit
        reopened = open_store(root)
        assert isinstance(reopened, ShardedArtifactStore)
        _, hit = reopened.get_or_prepare(
            gcd_module(), KEY, BITS, pieces=PIECES
        )
        assert hit

    def test_planner_sized_pieces_route_to_the_owning_shard(self, fabric):
        # Regression: with pieces=None the planner picks the count,
        # and the artifact's concrete fingerprint is the address.
        # Routing by the unresolved digest put it on the wrong shard.
        prepared, hit = fabric.get_or_prepare(gcd_module(), KEY, BITS)
        assert not hit
        record = fabric.record(prepared.fingerprint())
        assert record.digest == prepared.fingerprint()
        assert fabric.verify() == []
        _, hit = fabric.get_or_prepare(gcd_module(), KEY, BITS)
        assert hit

    def test_open_store_detects_layout(self, tmp_path, prepared):
        fabric_root = str(tmp_path / "fabric")
        plain_root = str(tmp_path / "plain")
        ShardedArtifactStore(fabric_root, shards=2)
        ArtifactStore(plain_root)
        assert is_fabric(fabric_root)
        assert not is_fabric(plain_root)
        assert isinstance(open_store(fabric_root), ShardedArtifactStore)
        assert isinstance(open_store(plain_root), ArtifactStore)

    def test_open_store_refuses_to_shard_a_plain_store(self, tmp_path):
        root = str(tmp_path / "plain")
        ArtifactStore(root)
        with pytest.raises(StoreError, match="single store"):
            open_store(root, create=True, shards=2)

    def test_manifest_records_membership(self, fabric):
        with open(os.path.join(fabric.root, FABRIC_MANIFEST)) as fp:
            doc = json.load(fp)
        assert doc["version"] == 1
        assert doc["shards"] == ["shard-00", "shard-01", "shard-02"]

    def test_quarantine_rides_the_owning_shard(self, fabric, prepared):
        # PR 5's hardening is per shard: corrupt the blob where it
        # lives and the owning shard quarantines it on load.
        record = fabric.put(prepared)
        owner = fabric.shard(fabric.route(record.digest))
        blob = owner._blob_path(record.digest)
        with open(blob, "ab") as fp:
            fp.write(b"rot")
        with pytest.raises(StoreError, match="integrity check"):
            fabric.load(record.digest)
        assert [q.digest for q in fabric.quarantined()] == [record.digest]


class TestRebalancing:
    def _fill(self, fabric, count=6):
        digests = []
        for index in range(count):
            prepared, _ = fabric.get_or_prepare(
                collatz_module() if index % 2 else gcd_module(),
                WatermarkKey(secret=f"k{index}".encode(), inputs=[25, 10]),
                BITS, pieces=PIECES,
            )
            digests.append(prepared.fingerprint())
        return digests

    def test_add_shard_moves_only_the_new_arc(self, fabric):
        digests = self._fill(fabric)
        old_ring = fabric.ring
        report = fabric.add_shard()
        assert report.added == "shard-03"
        # Minimal movement, asserted: everything that moved landed on
        # the new shard, and it is exactly the re-routed set.
        expected = {d for d in digests
                    if fabric.ring.route(d) != old_ring.route(d)}
        assert set(report.moved) == expected
        for digest, (source, destination) in report.moved.items():
            assert destination == "shard-03"
            assert source == old_ring.route(digest)
        assert report.kept == len(digests) - len(report.moved)
        assert fabric.verify() == []
        for digest in digests:
            assert fabric.load(digest).fingerprint() == digest

    def test_remove_shard_is_the_inverse(self, fabric):
        digests = self._fill(fabric)
        placement = {d: fabric.route(d) for d in digests}
        grow = fabric.add_shard()
        shrink = fabric.remove_shard("shard-03")
        assert shrink.removed == "shard-03"
        # The departing shard's keys scatter back to exactly where
        # they came from; nothing else ever moved.
        assert set(shrink.moved) == set(grow.moved)
        assert {d: fabric.route(d) for d in digests} == placement
        assert fabric.verify() == []

    def test_interrupted_move_is_flagged_not_lost(self, fabric, prepared):
        record = fabric.put(prepared)
        source = fabric.route(record.digest)
        # Simulate a crash mid-rebalance: the blob was adopted by a
        # wrong shard but never evicted from the right one.
        other = next(n for n in fabric.shard_names if n != source)
        data = fabric.shard(source).export_blob(record.digest)
        fabric.shard(other).adopt(*data)
        problems = fabric.verify()
        assert any("stale placement" in p for p in problems)
        # The artifact is still loadable from its true owner.
        assert fabric.load(record.digest).fingerprint() == record.digest

    def test_cannot_remove_last_shard(self, tmp_path):
        fabric = ShardedArtifactStore(str(tmp_path / "f"), shards=1)
        with pytest.raises(StoreError, match="last shard"):
            fabric.remove_shard("shard-00")

    def test_records_merge_fabric_wide(self, fabric):
        digests = self._fill(fabric, count=4)
        listed = [r.digest for r in fabric.records()]
        assert sorted(listed) == sorted(digests)
        assert len(fabric) == 4

    def test_resolve_prefix_across_shards(self, fabric, prepared):
        record = fabric.put(prepared)
        assert fabric.resolve(record.digest[:12]) == record.digest
        with pytest.raises(StoreError, match="no artifact"):
            fabric.resolve("ffffffffffff")
