"""End-to-end tests for the Section 3 pipeline: embed -> run -> recognize."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bytecode_wm import (
    SitePicker,
    WatermarkKey,
    eligible_sites,
    embed,
    recognize,
)
from repro.core.errors import EmbeddingError, KeyError_
from repro.vm import run_module, verify_module
from repro.workloads import (
    CAFFEINEMARK_INPUT,
    caffeinemark_module,
    collatz_module,
    gcd_module,
)

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])


class TestWatermarkKey:
    def test_rejects_non_bytes_secret(self):
        with pytest.raises(KeyError_):
            WatermarkKey(secret="str", inputs=[1])  # type: ignore[arg-type]

    def test_rejects_non_int_inputs(self):
        with pytest.raises(KeyError_):
            WatermarkKey(secret=b"x", inputs=["a"])  # type: ignore[list-item]

    def test_rng_streams_are_scoped_and_deterministic(self):
        k = WatermarkKey(secret=b"x", inputs=[])
        assert k.rng("a").random() == k.rng("a").random()
        assert k.rng("a").random() != k.rng("b").random()

    def test_cipher_derived_from_secret(self):
        a = WatermarkKey(secret=b"one", inputs=[]).cipher()
        b = WatermarkKey(secret=b"two", inputs=[]).cipher()
        assert a.encrypt_block(7) != b.encrypt_block(7)


class TestEmbed:
    def test_semantics_preserved(self):
        module = gcd_module()
        base = run_module(module, KEY.inputs)
        result = embed(module, 0xCAFE, KEY, watermark_bits=16)
        marked = run_module(result.module, KEY.inputs)
        assert marked.output == base.output

    def test_original_module_untouched(self):
        module = gcd_module()
        before = module.byte_size()
        embed(module, 0xCAFE, KEY, watermark_bits=16)
        assert module.byte_size() == before

    def test_marked_module_verifies(self):
        result = embed(gcd_module(), 0xCAFE, KEY, watermark_bits=16)
        verify_module(result.module)

    def test_size_grows_linearly_with_pieces(self):
        module = collatz_module()
        key = WatermarkKey(secret=b"s", inputs=[27])
        sizes = []
        for pieces in (4, 8, 16):
            r = embed(module, 99, key, pieces=pieces, watermark_bits=16)
            sizes.append(r.byte_size_increase)
        per_piece_1 = (sizes[1] - sizes[0]) / 4
        per_piece_2 = (sizes[2] - sizes[1]) / 8
        assert per_piece_1 > 0
        # Roughly linear: the two marginal costs agree within 50%.
        assert 0.5 < per_piece_1 / per_piece_2 < 2.0

    def test_deterministic(self):
        a = embed(gcd_module(), 7, KEY, watermark_bits=16)
        b = embed(gcd_module(), 7, KEY, watermark_bits=16)
        assert [(p.site, p.generator) for p in a.placements] == \
            [(p.site, p.generator) for p in b.placements]
        assert a.module.byte_size() == b.module.byte_size()

    def test_rejects_negative_watermark(self):
        with pytest.raises(EmbeddingError):
            embed(gcd_module(), -1, KEY)

    def test_rejects_oversized_watermark(self):
        with pytest.raises(EmbeddingError):
            embed(gcd_module(), 1 << 20, KEY, watermark_bits=16)

    def test_rejects_too_few_pieces(self):
        with pytest.raises(EmbeddingError):
            embed(gcd_module(), 3, KEY, watermark_bits=256, pieces=1)

    def test_placements_record_both_generators(self):
        # Under uniform placement most CaffeineMark sites execute many
        # times, so condition codegen should fire for some pieces.
        # (Inverse weighting concentrates pieces on once-executed cold
        # sites, where only the loop generator applies.)
        key = WatermarkKey(secret=b"cm", inputs=CAFFEINEMARK_INPUT)
        result = embed(caffeinemark_module(), 0xAB, key,
                       watermark_bits=16, pieces=12,
                       placement_policy="uniform")
        kinds = {p.generator for p in result.placements}
        assert "condition" in kinds

    def test_loop_only_when_condition_disabled(self):
        key = WatermarkKey(secret=b"cm", inputs=CAFFEINEMARK_INPUT)
        result = embed(caffeinemark_module(), 0xAB, key, watermark_bits=16,
                       pieces=6, prefer_condition=False)
        assert {p.generator for p in result.placements} == {"loop"}


class TestRecognize:
    @pytest.mark.parametrize("watermark,bits", [
        (0, 8), (255, 8), (0xCAFE, 16), (123456789, 32), (2**63 - 1, 64),
    ])
    def test_roundtrip(self, watermark, bits):
        result = embed(gcd_module(), watermark, KEY, watermark_bits=bits)
        found = recognize(result.module, KEY, watermark_bits=bits)
        assert found.complete
        assert found.value == watermark

    def test_unwatermarked_program_yields_nothing(self):
        found = recognize(gcd_module(), KEY, watermark_bits=16)
        assert not found.complete
        assert found.value is None

    def test_wrong_cipher_secret_fails(self):
        result = embed(gcd_module(), 0xCAFE, KEY, watermark_bits=16)
        wrong = WatermarkKey(secret=b"wrong", inputs=KEY.inputs)
        found = recognize(result.module, wrong, watermark_bits=16)
        assert found.value != 0xCAFE

    def test_wrong_input_sequence_loses_gated_pieces(self):
        # Pieces land where the *key input's* trace says code is cold.
        # This program has a hot always-executed region (so its sites
        # are unattractive) and a key-gated region full of cold sites;
        # with the wrong input the gated region never runs, its pieces
        # never reach the trace, and coverage collapses.
        from repro.lang import compile_source
        gated_src = """
        fn main() {
            var k = input();
            var burn = 0;
            for (var i = 0; i < 400; i = i + 1) { burn = burn + i; }
            if (k == 3) {
                var acc = 0;
                if (burn >= 0) { acc = acc + 1; }
                if (burn >= 1) { acc = acc + 2; }
                if (burn >= 2) { acc = acc + 3; }
                if (burn >= 3) { acc = acc + 4; }
                if (burn >= 4) { acc = acc + 5; }
                if (burn >= 5) { acc = acc + 6; }
                if (burn >= 6) { acc = acc + 7; }
                if (burn >= 7) { acc = acc + 8; }
                print(acc);
            }
            return 0;
        }
        """
        module = compile_source(gated_src)
        key = WatermarkKey(secret=b"s", inputs=[3])
        # 256-bit fingerprints use ~11 moduli: coverage needs pieces
        # from many distinct sites, which the wrong input cannot replay
        # (only `<entry>` and the outer join survive it).
        result = embed(module, 0xBEEF, key, watermark_bits=256, pieces=24)
        gated = sum(1 for p in result.placements if p.site.site != "<entry>")
        assert gated > 0, "expected some pieces on gated sites"
        assert recognize(result.module, key, watermark_bits=256).value == 0xBEEF
        wrong = WatermarkKey(secret=b"s", inputs=[1])
        found = recognize(result.module, wrong, watermark_bits=256)
        assert not found.complete
        assert found.value != 0xBEEF

    def test_fingerprinting_distinct_copies(self):
        """Every distributed copy encodes a unique integer (Section 2)."""
        module = collatz_module()
        key = WatermarkKey(secret=b"vendor", inputs=[27])
        for customer_id in (1, 500, 65535):
            marked = embed(module, customer_id, key, watermark_bits=16)
            found = recognize(marked.module, key, watermark_bits=16)
            assert found.value == customer_id

    def test_voting_toggle(self):
        result = embed(gcd_module(), 0xCAFE, KEY, watermark_bits=16)
        found = recognize(result.module, KEY, watermark_bits=16,
                          use_voting=False)
        assert found.value == 0xCAFE


class TestPlacement:
    def _trace_sites(self):
        module = caffeinemark_module()
        key = WatermarkKey(secret=b"cm", inputs=CAFFEINEMARK_INPUT)
        trace = run_module(module, key.inputs, trace_mode="full").trace
        return eligible_sites(trace, module), key

    def test_inverse_weighting_prefers_cold_sites(self):
        sites, key = self._trace_sites()
        cold_cutoff = sorted(sites.values())[len(sites) // 2]
        picker = SitePicker(sites, key.rng("p"), "inverse")
        picks = picker.pick_many(300)
        cold_fraction = sum(
            1 for s in picks if sites[s] <= cold_cutoff
        ) / len(picks)
        assert cold_fraction > 0.75

    def test_uniform_policy_is_flatter(self):
        sites, key = self._trace_sites()
        cold_cutoff = sorted(sites.values())[len(sites) // 2]
        picker = SitePicker(sites, key.rng("p"), "uniform")
        picks = picker.pick_many(300)
        cold_fraction = sum(
            1 for s in picks if sites[s] <= cold_cutoff
        ) / len(picks)
        assert cold_fraction < 0.8

    def test_unknown_policy_rejected(self):
        sites, key = self._trace_sites()
        with pytest.raises(ValueError):
            SitePicker(sites, key.rng("p"), "bogus")

    def test_empty_sites_rejected(self):
        with pytest.raises(EmbeddingError):
            SitePicker({}, None)  # type: ignore[arg-type]


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**16 - 1), st.integers(0, 2**32))
def test_roundtrip_random_watermarks(watermark, seed):
    key = WatermarkKey(secret=seed.to_bytes(5, "big"), inputs=[25, 10])
    result = embed(gcd_module(), watermark, key, watermark_bits=16)
    found = recognize(result.module, key, watermark_bits=16)
    assert found.complete and found.value == watermark


def test_roundtrip_survives_loop_repeated_junk_window():
    # Regression (hypothesis-found): under this key the gcd loop's
    # trace repeats a 64-bit window that decrypts to an in-space junk
    # statement 23 times, outvoting the 6 genuine pieces; the vote
    # filter then deleted the real mark. Out-of-range statements
    # (x >= 2^bits cannot be W mod p_i*p_j) are now barred from voting.
    key = WatermarkKey(secret=(97).to_bytes(5, "big"), inputs=[25, 10])
    result = embed(gcd_module(), 0, key, watermark_bits=16)
    found = recognize(result.module, key, watermark_bits=16)
    assert found.complete and found.value == 0
