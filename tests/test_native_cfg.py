"""Tests for the native control-flow graph (PLTO's CFG stage)."""

import pytest

from repro.lang.codegen_native import compile_source_native
from repro.native import assemble_text, build_native_cfg


LOOP_SRC = """
.entry main
main:
    mov ecx, 5
head:
    cmp ecx, 0
    je done
    sub ecx, 1
    jmp head
done:
    mov eax, ecx
    sys_out
    halt
"""


class TestBlocks:
    def test_block_partition(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        # Every instruction is in exactly one block.
        listed = {a for a, _ in image.disassemble()}
        covered = {
            a for b in cfg.blocks.values() for a, _i in b.instructions
        }
        assert covered == listed

    def test_entry_is_a_block(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        assert cfg.entry == image.entry
        assert cfg.entry in cfg.blocks

    def test_block_of(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        head = image.symbol("head")
        # `head` leads its own block (it is a branch target).
        assert cfg.block_of(head) == head

    def test_conditional_has_two_successors(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        head_block = cfg.blocks[image.symbol("head")]
        assert len(head_block.successors) == 2

    def test_halt_has_no_successors(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        done_block = cfg.blocks[cfg.block_of(image.symbol("done"))]
        assert done_block.successors == []


class TestLoops:
    def test_back_edge_detected(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        edges = cfg.back_edges()
        assert edges, "the countdown loop must produce a back edge"
        head = image.symbol("head")
        assert any(target == cfg.block_of(head) for _s, target in edges)

    def test_loop_membership(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        loop_addrs = cfg.loop_instruction_addresses()
        head = image.symbol("head")
        done = image.symbol("done")
        assert head in loop_addrs
        assert done not in loop_addrs
        assert image.entry not in loop_addrs

    def test_straightline_has_no_loops(self):
        image = assemble_text(
            ".entry main\nmain:\n    mov eax, 1\n    sys_out\n    halt\n"
        )
        cfg = build_native_cfg(image)
        assert cfg.back_edges() == []
        assert cfg.loop_blocks() == set()

    def test_compiled_loops_detected(self):
        image = compile_source_native("""
        fn main() {
            var total = 0;
            for (var i = 0; i < 10; i = i + 1) { total = total + i; }
            print(total);
            return 0;
        }
        """)
        cfg = build_native_cfg(image)
        assert cfg.back_edges()
        assert cfg.loop_blocks()

    def test_call_is_fallthrough_not_loop(self):
        """f calls g and g returns: must NOT be classified as a loop."""
        image = compile_source_native("""
        fn g(x) { return x + 1; }
        fn main() { print(g(1)); print(g(2)); return 0; }
        """)
        cfg = build_native_cfg(image)
        assert cfg.loop_blocks() == set()


class TestDominators:
    DIAMOND = """
.entry main
main:
    mov eax, 1
    cmp eax, 0
    je right
    mov ebx, 1
    jmp join
right:
    mov ebx, 2
join:
    sys_out
    halt
"""

    def test_diamond(self):
        image = assemble_text(self.DIAMOND)
        cfg = build_native_cfg(image)
        main = image.symbol("main")
        right = image.symbol("right")
        join = image.symbol("join")
        assert cfg.dominates(main, right)
        assert cfg.dominates(main, join)
        assert not cfg.dominates(right, join)   # the left arm bypasses it
        assert cfg.dominates(join, join)        # reflexive

    def test_entry_dominates_everything_reachable(self):
        image = assemble_text(LOOP_SRC)
        cfg = build_native_cfg(image)
        dom = cfg.dominators()
        entry_block = cfg.block_of(image.entry)
        for block, dominators in dom.items():
            if dominators:  # reachable
                assert entry_block in dominators

    def test_unreachable_blocks_have_empty_sets(self):
        src = """
.entry main
main:
    halt
orphan:
    mov eax, 1
    halt
"""
        image = assemble_text(src)
        cfg = build_native_cfg(image)
        dom = cfg.dominators()
        orphan_block = cfg.block_of(image.symbol("orphan"))
        assert dom.get(orphan_block, set()) == set()

    def test_watermark_begin_dominates_tamper_region_model(self):
        """Section 4.3's framing on a real embedding: within the region
        reached only through `begin`, begin's block dominates the
        tamper-proofed jumps' blocks in the *dynamic* sense used by the
        embedder (the static CFG treats calls as fall-through, so we
        check the dynamic guarantee instead: on the key input, every
        lockdown-protected jump first executes after the chain ran)."""
        from repro.native import Machine
        from repro.native_wm import embed_native
        from repro.workloads.spec import TRAIN_INPUT, spec_native
        image = spec_native("gcc")
        emb = embed_native(image, 0xAB, 8, TRAIN_INPUT)
        assert emb.tamper_jumps
        seen = {"begin": None}
        indirect_first = {}

        def hook(machine, addr, instr):
            if addr == emb.begin and seen["begin"] is None:
                seen["begin"] = machine.steps
            if instr.mnemonic == "jmp_a" and addr not in indirect_first:
                indirect_first[addr] = machine.steps

        Machine(emb.image).run(TRAIN_INPUT, hook)
        assert seen["begin"] is not None
        assert indirect_first, "tamper-proofed jumps never executed"
        for addr, step in indirect_first.items():
            assert step > seen["begin"], hex(addr)
