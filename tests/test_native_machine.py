"""Tests for the N32 substrate: encoding, assembler, machine, rewriter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.native import (
    BinaryImage,
    EncodingError,
    Imm,
    Label,
    Machine,
    MachineFault,
    Mem,
    NInstruction,
    Reg,
    TEXT_BASE,
    assemble_text,
    decode_instruction,
    encode_instruction,
    lift,
    lower,
    ni,
    patch_bytes,
    profile_image,
    run_image,
    signed32,
    wrap32,
)
from repro.native.isa import INSTRUCTION_FORMS


class TestEncodingRoundtrip:
    CASES = [
        ni("nop"), ni("halt"), ni("ret"), ni("pushf"), ni("popf"),
        ni("push", Reg("eax")), ni("pop", Reg("edi")),
        ni("pushi", Imm(0xDEADBEEF)),
        ni("mov_ri", Reg("ecx"), Imm(12345)),
        ni("mov_rr", Reg("eax"), Reg("ebx")),
        ni("mov_rm", Reg("eax"), Mem(base="ebp", disp=-8)),
        ni("mov_mr", Mem(base="esp", disp=16), Reg("edx")),
        ni("mov_ra", Reg("esi"), Mem(disp=0x8100000)),
        ni("mov_ar", Mem(disp=0x8100004), Reg("edi")),
        ni("mov_mi", Mem(base="ecx", disp=4), Imm(0)),
        ni("mov_rx", Reg("eax"), Mem(disp=0x8100010, index="edx")),
        ni("lea", Reg("eax"), Mem(base="esp", disp=0x30)),
        ni("xchg_rm", Reg("eax"), Mem(base="esp", disp=0)),
        ni("add_rr", Reg("eax"), Reg("ecx")),
        ni("sub_ri", Reg("esp"), Imm(64)),
        ni("xor_mr", Mem(base="esp", disp=0x10), Reg("eax")),
        ni("cmp_mi", Mem(base="eax", disp=0), Imm(0)),
        ni("shl_ri", Reg("eax"), Imm(12)),
        ni("sar_rr", Reg("eax"), Reg("ecx")),
        ni("imul_rri", Reg("eax"), Reg("eax"), Imm(0xC)),
        ni("idiv", Reg("ebx")),
        ni("jmp", Imm(TEXT_BASE + 100)),
        ni("call", Imm(TEXT_BASE + 5)),
        ni("je", Imm(TEXT_BASE + 64)),
        ni("jge", Imm(TEXT_BASE)),
        ni("jmp_a", Mem(disp=0x8100020)),
        ni("call_a", Mem(disp=0x8100024)),
        ni("jmp_r", Reg("eax")),
        ni("sys_out"), ni("sys_in"),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: repr(i))
    def test_roundtrip(self, instr):
        addr = TEXT_BASE + 10
        data = encode_instruction(instr, addr)
        assert len(data) == instr.length
        decoded, length = decode_instruction(data, 0, addr)
        assert length == instr.length
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.operands == instr.operands

    def test_every_form_has_declared_length(self):
        # Each case list covers a form; verify declared lengths match
        # IA-32 flavor for the critical ones.
        assert INSTRUCTION_FORMS["call"][1] == 5
        assert INSTRUCTION_FORMS["jmp"][1] == 5
        assert INSTRUCTION_FORMS["je"][1] == 6
        assert INSTRUCTION_FORMS["push"][1] == 1
        assert INSTRUCTION_FORMS["ret"][1] == 1

    def test_bad_opcode_raises(self):
        with pytest.raises(EncodingError, match="bad opcode"):
            decode_instruction(b"\xff\x00\x00", 0, TEXT_BASE)

    def test_truncated_raises(self):
        data = encode_instruction(ni("mov_ri", Reg("eax"), Imm(1)), TEXT_BASE)
        with pytest.raises(EncodingError, match="truncated"):
            decode_instruction(data[:3], 0, TEXT_BASE)

    def test_unresolved_label_rejected(self):
        with pytest.raises(EncodingError, match="unresolved"):
            encode_instruction(ni("jmp", Label("somewhere")), TEXT_BASE)

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_rel32_range(self, delta):
        addr = 0x08050000
        target = wrap32(addr + 5 + delta)
        data = encode_instruction(ni("jmp", Imm(target)), addr)
        decoded, _ = decode_instruction(data, 0, addr)
        assert decoded.operands[0].value == target


class TestWrap:
    @given(st.integers(-(2**40), 2**40))
    def test_wrap_signed_inverse(self, v):
        assert wrap32(signed32(v)) == wrap32(v)
        assert -(2**31) <= signed32(v) < 2**31


FACT_SRC = """
.entry main
.word counter 0
main:
    mov eax, 6
    push eax
    call fact
    add esp, 4
    sys_out
    halt
fact:
    push ebp
    mov ebp, esp
    mov eax, [ebp+8]
    cmp eax, 1
    jle base
    push eax
    sub eax, 1
    push eax
    call fact
    add esp, 4
    pop ebx
    imul eax, ebx
    pop ebp
    ret
base:
    mov eax, 1
    pop ebp
    ret
"""


class TestMachine:
    def test_factorial(self):
        image = assemble_text(FACT_SRC)
        assert run_image(image).output == [720]

    def test_input_output(self):
        src = ".entry main\nmain:\n    sys_in\n    mov ebx, eax\n" \
              "    sys_in\n    add eax, ebx\n    sys_out\n    halt\n"
        assert run_image(assemble_text(src), [30, 12]).output == [42]

    def test_input_exhaustion_faults(self):
        src = ".entry main\nmain:\n    sys_in\n    halt\n"
        with pytest.raises(MachineFault, match="input exhausted"):
            run_image(assemble_text(src), [])

    def test_division_by_zero_faults(self):
        src = ".entry main\nmain:\n    mov eax, 5\n    mov ebx, 0\n" \
              "    idiv ebx\n    halt\n"
        with pytest.raises(MachineFault, match="division by zero"):
            run_image(assemble_text(src))

    def test_signed_division(self):
        src = ".entry main\nmain:\n    mov eax, -7\n    mov ebx, 2\n" \
              "    idiv ebx\n    sys_out\n    mov eax, edx\n    sys_out\n" \
              "    halt\n"
        assert run_image(assemble_text(src)).output == [-3, -1]

    def test_wild_read_faults(self):
        src = ".entry main\nmain:\n    mov eax, [0x100]\n    halt\n"
        with pytest.raises(MachineFault, match="bad read"):
            run_image(assemble_text(src))

    def test_write_to_text_faults(self):
        src = ".entry main\nmain:\n    mov ebx, 7\n" \
              f"    mov eax, {TEXT_BASE}\n" \
              "    mov [eax+0], ebx\n    halt\n"
        with pytest.raises(MachineFault, match="write to text"):
            run_image(assemble_text(src))

    def test_eip_outside_text_faults(self):
        src = ".entry main\nmain:\n    mov eax, 0x100\n    jmp eax\n    halt\n"
        with pytest.raises(MachineFault, match="eip outside text"):
            run_image(assemble_text(src))

    def test_step_budget(self):
        src = ".entry main\nmain:\nspin:\n    jmp spin\n"
        with pytest.raises(MachineFault, match="budget"):
            run_image(assemble_text(src), max_steps=1000)

    def test_ret_address_manipulation(self):
        """The core branch-function mechanic: xor [esp] redirects ret."""
        src = f"""
.entry main
.word cell 0
main:
    call mangler
    mov eax, 1
    sys_out
    halt
elsewhere:
    mov eax, 2
    sys_out
    halt
mangler:
    mov eax, [esp+0]
    mov ebx, elsewhere
    xor eax, ebx
    xor [esp+0], eax
    ret
"""
        # mangler: [esp] ^= ([esp] ^ elsewhere) = elsewhere.
        assert run_image(assemble_text(src)).output == [2]

    def test_runs_do_not_mutate_image_data(self):
        src = """
.entry main
.word cell 5
main:
    mov eax, [cell]
    add eax, 1
    mov [cell], eax
    mov eax, [cell]
    sys_out
    halt
"""
        image = assemble_text(src)
        assert run_image(image).output == [6]
        assert run_image(image).output == [6]  # not 7: fresh data copy

    def test_flags_save_restore(self):
        src = """
.entry main
main:
    mov eax, 1
    cmp eax, 2
    pushf
    mov ebx, 5
    cmp ebx, 5
    popf
    jl less
    mov eax, 0
    sys_out
    halt
less:
    mov eax, 99
    sys_out
    halt
"""
        assert run_image(assemble_text(src)).output == [99]


class TestRewriter:
    def test_lift_lower_identity(self):
        image = assemble_text(FACT_SRC)
        relaid = lower(lift(image))
        assert relaid.text == image.text
        assert run_image(relaid).output == [720]

    def test_insertion_shifts_and_fixes_branches(self):
        image = assemble_text(FACT_SRC)
        prog = lift(image)
        prog.insert(prog.find(image.entry), [ni("nop")] * 7)
        relaid = lower(prog)
        assert len(relaid.text) == len(image.text) + 7
        assert run_image(relaid).output == [720]

    def test_data_base_is_preserved(self):
        image = assemble_text(FACT_SRC)
        prog = lift(image)
        prog.insert(0, [ni("nop")] * 3)
        relaid = lower(prog)
        assert relaid.data_base == image.data_base

    def test_patch_bytes_same_length(self):
        image = assemble_text(FACT_SRC)
        # Overwrite `mov eax, 6` (5 bytes) with `mov eax, 4`.
        patched = patch_bytes(
            image, image.entry,
            bytes(encode_instruction(ni("mov_ri", Reg("eax"), Imm(4)),
                                     image.entry)),
        )
        assert run_image(patched).output == [24]
        assert run_image(image).output == [720]  # original untouched

    def test_patch_outside_text_rejected(self):
        image = assemble_text(FACT_SRC)
        from repro.native import RewriteError
        with pytest.raises(RewriteError):
            patch_bytes(image, image.data_base, b"\x00")

    def test_overflow_into_data_rejected(self):
        image = assemble_text(FACT_SRC)
        prog = lift(image)
        gap = image.data_base - image.text_end
        from repro.native import RewriteError
        with pytest.raises(RewriteError, match="overflows"):
            prog.insert(0, [ni("nop")] * (gap + 1))
            lower(prog)


class TestProfiler:
    def test_counts_and_first_seen(self):
        image = assemble_text(FACT_SRC)
        profile = profile_image(image)
        assert profile.total_steps == run_image(image).steps
        assert profile.count(image.entry) == 1
        # The recursive body runs more than once.
        assert max(profile.counts.values()) >= 5
        assert profile.first_seen[image.entry] == 0

    def test_output_captured(self):
        image = assemble_text(FACT_SRC)
        assert profile_image(image).output == [720]
