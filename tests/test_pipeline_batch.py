"""Tests for the parallel batch executor and the batch-embed CLI."""

import json
import os

import pytest

from repro.bytecode_wm import WatermarkKey, recognize
from repro.cli import main
from repro.pipeline import (
    BatchReport,
    CopySpec,
    ManifestError,
    default_chunksize,
    embed_copy,
    load_manifest,
    parse_manifest,
    prepare,
    run_batch,
    sequential_specs,
)
from repro.vm import assemble, disassemble
from repro.workloads import collatz_module, gcd_module

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])
BITS = 16


@pytest.fixture(scope="module")
def prepared():
    return prepare(gcd_module(), KEY, BITS)


class TestCopySpec:
    def test_rejects_unsafe_ids(self):
        with pytest.raises(ValueError):
            CopySpec("../escape", 1)
        with pytest.raises(ValueError):
            CopySpec("", 1)
        with pytest.raises(ValueError):
            CopySpec("a b", 1)

    def test_rejects_negative_watermark(self):
        with pytest.raises(ValueError):
            CopySpec("x", -1)

    def test_sequential_specs(self):
        specs = sequential_specs(3, start_watermark=10, id_prefix="cust")
        assert [s.watermark for s in specs] == [10, 11, 12]
        assert [s.copy_id for s in specs] == [
            "cust-0010", "cust-0011", "cust-0012"
        ]
        assert len({s.seed for s in specs}) == 3

    def test_default_chunksize(self):
        assert default_chunksize(16, 4) == 1
        assert default_chunksize(100, 4) == 6
        assert default_chunksize(1, 8) == 1


class TestBatchFingerprinting:
    def test_each_copy_recognizes_only_its_own_mark(self, prepared):
        specs = sequential_specs(8, start_watermark=201)
        report = run_batch(prepared, specs, workers=1)
        assert report.all_ok
        watermarks = {s.watermark for s in specs}
        for spec, copy in zip(specs, report.copies):
            assert copy.verified and copy.recognized == spec.watermark
            # Re-recognize from the emitted text: the mark is the
            # copy's own, not any sibling's.
            module = assemble(copy.text)
            found = recognize(module, KEY, watermark_bits=BITS)
            assert found.complete
            assert found.value == spec.watermark
            assert found.value in watermarks
            siblings = watermarks - {spec.watermark}
            assert found.value not in siblings

    def test_copies_are_pairwise_distinct(self, prepared):
        report = run_batch(
            prepared, sequential_specs(8, start_watermark=50), workers=1
        )
        texts = [c.text for c in report.copies]
        assert len(set(texts)) == len(texts)

    def test_byte_identical_across_worker_counts(self, prepared):
        specs = sequential_specs(8, start_watermark=300)
        serial = run_batch(prepared, specs, workers=1)
        parallel = run_batch(prepared, specs, workers=4)
        assert serial.all_ok and parallel.all_ok
        assert [c.text for c in serial.copies] == \
            [c.text for c in parallel.copies]

    def test_results_keep_request_order(self, prepared):
        specs = sequential_specs(6, start_watermark=1)
        report = run_batch(prepared, specs, workers=3)
        assert [c.copy_id for c in report.copies] == \
            [s.copy_id for s in specs]

    def test_identical_seed_and_watermark_identical_bytes(self, prepared):
        a = embed_copy(prepared, CopySpec("a", 77, seed=5))
        b = embed_copy(prepared, CopySpec("b", 77, seed=5))
        c = embed_copy(prepared, CopySpec("c", 77, seed=6))
        assert a.text == b.text
        assert a.text != c.text

    def test_self_check_can_be_skipped(self, prepared):
        specs = sequential_specs(3, start_watermark=60)
        unchecked = run_batch(prepared, specs, workers=1, self_check=False)
        assert unchecked.all_ok
        for copy in unchecked.copies:
            assert copy.ok and not copy.checked
            assert copy.recognized is None
        # Skipping the check changes nothing about the modules.
        checked = run_batch(prepared, specs, workers=1)
        assert [c.text for c in checked.copies] == \
            [c.text for c in unchecked.copies]

    def test_failed_copy_does_not_kill_batch(self, prepared):
        specs = [
            CopySpec("good-1", 11),
            CopySpec("too-wide", 1 << BITS),  # embed must reject this
            CopySpec("good-2", 13),
        ]
        report = run_batch(prepared, specs, workers=1)
        assert not report.all_ok
        assert report.succeeded == 2 and report.failed == 1
        bad = report.copies[1]
        assert not bad.ok and "EmbeddingError" in bad.error
        assert report.copies[0].verified and report.copies[2].verified

    def test_duplicate_ids_rejected(self, prepared):
        specs = [CopySpec("same", 1), CopySpec("same", 2)]
        with pytest.raises(ValueError):
            run_batch(prepared, specs)

    def test_outdir_and_report(self, prepared, tmp_path):
        outdir = str(tmp_path / "dist")
        specs = sequential_specs(3, start_watermark=900)
        report = run_batch(prepared, specs, workers=1, outdir=outdir)
        for spec in specs:
            path = os.path.join(outdir, f"{spec.copy_id}.wasm")
            assert os.path.exists(path)
            module = assemble(open(path).read())
            assert recognize(module, KEY,
                             watermark_bits=BITS).value == spec.watermark
        report.write(str(tmp_path / "report.json"))
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["all_ok"] and doc["copy_count"] == 3
        assert "text" not in doc["copies"][0]
        assert doc["prepare_stages"]["trace"] >= 0.0
        assert doc["batch_stages"]["embed"] > 0.0

    def test_report_metrics(self, prepared):
        report = run_batch(prepared, sequential_specs(4), workers=1,
                           cache_hits=1, cache_misses=0)
        assert report.copies_per_second > 0
        assert report.total_bytes_emitted == sum(
            c.bytes_emitted for c in report.copies
        )
        assert report.cache_hits == 1 and report.cache_misses == 0
        assert "4 copies" in report.summary()


class TestManifest:
    def _doc(self, **overrides):
        doc = {
            "module": "app.wasm",
            "secret": "vendor",
            "inputs": [25, 10],
            "bits": 16,
            "copies": [
                {"id": "acme", "watermark": "0x10"},
                {"id": "globex", "watermark": 17, "seed": 9},
            ],
        }
        doc.update(overrides)
        return doc

    def test_parse_explicit_copies(self):
        m = parse_manifest(self._doc(), base_dir="/srv/jobs")
        assert m.module_path == "/srv/jobs/app.wasm"
        assert m.secret == b"vendor" and m.inputs == (25, 10)
        assert [(c.copy_id, c.watermark, c.seed) for c in m.copies] == [
            ("acme", 0x10, 0), ("globex", 17, 9),
        ]
        assert m.key().secret == b"vendor"

    def test_parse_generated_copies(self):
        m = parse_manifest(self._doc(
            copies={"count": 4, "start_watermark": 7, "id_prefix": "c"}
        ))
        assert [c.watermark for c in m.copies] == [7, 8, 9, 10]
        assert m.copies[0].copy_id == "c-0007"

    @pytest.mark.parametrize("mutation", [
        {"module": ""},
        {"secret": ""},
        {"bits": 0},
        {"bits": "16"},
        {"inputs": ["x"]},
        {"pieces": 0},
        {"piece_loss": 1.5},
        {"target_success": 0},
        {"copies": []},
        {"copies": [{"id": "a"}]},
        {"copies": [{"id": "dup", "watermark": 1},
                    {"id": "dup", "watermark": 2}]},
        {"copies": [{"id": "wide", "watermark": 1 << 16}]},
        {"copies": [{"id": "bad id", "watermark": 1}]},
        {"copies": {"count": 0}},
    ])
    def test_rejects_malformed(self, mutation):
        with pytest.raises(ManifestError):
            parse_manifest(self._doc(**mutation))

    def test_missing_field(self):
        doc = self._doc()
        del doc["bits"]
        with pytest.raises(ManifestError):
            parse_manifest(doc)

    def test_load_manifest_resolves_relative_module(self, tmp_path):
        (tmp_path / "m.wasm").write_text(disassemble(gcd_module()))
        (tmp_path / "job.json").write_text(json.dumps(self._doc(
            module="m.wasm"
        )))
        m = load_manifest(str(tmp_path / "job.json"))
        assert m.module_path == str(tmp_path / "m.wasm")


class TestCli:
    def _write_job(self, tmp_path, copies, module=None):
        (tmp_path / "app.wasm").write_text(
            disassemble(module or collatz_module())
        )
        (tmp_path / "job.json").write_text(json.dumps({
            "module": "app.wasm",
            "secret": "vendor",
            "inputs": [27],
            "bits": 16,
            "pieces": 8,
            "copies": copies,
        }))
        return str(tmp_path / "job.json")

    def test_batch_embed_end_to_end(self, tmp_path):
        job = self._write_job(
            tmp_path, {"count": 6, "start_watermark": 1001}
        )
        outdir = str(tmp_path / "dist")
        rc = main(["batch-embed", job, "-o", outdir, "--workers", "2"])
        assert rc == 0
        report = json.loads(
            open(os.path.join(outdir, "report.json")).read()
        )
        assert report["all_ok"] and report["copy_count"] == 6
        key = WatermarkKey(secret=b"vendor", inputs=[27])
        module = assemble(open(os.path.join(outdir,
                                            "copy-1001.wasm")).read())
        assert recognize(module, key, watermark_bits=16).value == 1001

    def test_batch_embed_prepare_cache_roundtrip(self, tmp_path):
        job = self._write_job(tmp_path, {"count": 2})
        cache = str(tmp_path / "prep.pkl")
        rc = main(["batch-embed", job, "-o", str(tmp_path / "d1"),
                   "--prepare-cache", cache])
        assert rc == 0 and os.path.exists(cache)
        rc = main(["batch-embed", job, "-o", str(tmp_path / "d2"),
                   "--prepare-cache", cache])
        assert rc == 0
        second = json.loads((tmp_path / "d2" / "report.json").read_text())
        assert second["cache"] == {"hits": 1, "misses": 0}
        a = (tmp_path / "d1" / "copy-0001.wasm").read_text()
        b = (tmp_path / "d2" / "copy-0001.wasm").read_text()
        assert a == b

    def test_batch_embed_reports_failure_exit_code(self, tmp_path):
        # One piece cannot cover the ~11 moduli of a 256-bit mark, so
        # every copy fails at the split stage — isolated per copy, and
        # surfaced as a non-zero exit with per-copy errors on record.
        (tmp_path / "app.wasm").write_text(disassemble(collatz_module()))
        (tmp_path / "job.json").write_text(json.dumps({
            "module": "app.wasm",
            "secret": "vendor",
            "inputs": [27],
            "bits": 256,
            "pieces": 1,
            "copies": {"count": 2},
        }))
        outdir = str(tmp_path / "dist")
        rc = main(["batch-embed", str(tmp_path / "job.json"),
                   "-o", outdir])
        assert rc == 1
        report = json.loads(
            open(os.path.join(outdir, "report.json")).read()
        )
        assert not report["all_ok"]
        assert all(c["error"] for c in report["copies"])

    def test_batch_embed_trap_during_prepare(self, tmp_path):
        # gcd needs two inputs; one input traps the tracing run, which
        # the CLI reports as exit code 2 (like `recognize`).
        (tmp_path / "app.wasm").write_text(disassemble(gcd_module()))
        (tmp_path / "job.json").write_text(json.dumps({
            "module": "app.wasm",
            "secret": "vendor",
            "inputs": [27],
            "bits": 16,
            "copies": {"count": 2},
        }))
        rc = main(["batch-embed", str(tmp_path / "job.json"),
                   "-o", str(tmp_path / "dist")])
        assert rc == 2


@pytest.mark.slow
class TestCliAtScale:
    def test_sixteen_copies_four_workers(self, tmp_path):
        (tmp_path / "app.wasm").write_text(disassemble(collatz_module()))
        (tmp_path / "job.json").write_text(json.dumps({
            "module": "app.wasm",
            "secret": "vendor-master-key",
            "inputs": [27],
            "bits": 16,
            "pieces": 10,
            "copies": {"count": 16, "start_watermark": 1},
        }))
        outdir = str(tmp_path / "dist")
        rc = main(["batch-embed", str(tmp_path / "job.json"),
                   "-o", outdir, "--workers", "4"])
        assert rc == 0
        report = json.loads(
            open(os.path.join(outdir, "report.json")).read()
        )
        assert report["copy_count"] == 16 and report["all_ok"]
        assert all(c["self_check"] and c["output_ok"]
                   for c in report["copies"])
