"""Tests for the recognition-side recombination algorithm (Section 3.3).

These tests drive recovery end-to-end at the bit level: pieces are
split, enumerated, encrypted and laid into a synthetic bit-string
(optionally with junk padding, corruption, and deletions), then fed to
:func:`repro.core.recovery.recover` — exactly what the bytecode
recognizer does after tracing.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitstring import int_to_bits_lsb_first
from repro.core.cipher import cipher_for_secret
from repro.core.enumeration import Statement, StatementEnumeration
from repro.core.primes import choose_moduli
from repro.core.recovery import (
    apply_vote_filter,
    extract_candidates,
    gcd_consistency_check,
    hold_votes,
    recover,
)
from repro.core.splitting import split

CIPHER = cipher_for_secret(b"unit-test-secret")


def embed_pieces_into_bits(statements, enumeration, cipher, rng=None,
                           junk_bits=48, corrupt=()):
    """Lay encrypted statement blocks into a bit-string with junk gaps.

    ``corrupt`` lists statement indices whose ciphertext gets one bit
    flipped (modelling a branch-insertion attack landing inside a
    piece).
    """
    rng = rng or random.Random(7)
    bits = [rng.randint(0, 1) for _ in range(junk_bits)]
    for idx, stmt in enumerate(statements):
        block = cipher.encrypt_block(enumeration.encode(stmt))
        if idx in corrupt:
            block ^= 1 << rng.randrange(64)
        bits.extend(int_to_bits_lsb_first(block, 64))
        bits.extend(rng.randint(0, 1) for _ in range(junk_bits))
    return bits


class TestExtractCandidates:
    def test_finds_planted_pieces(self):
        moduli = choose_moduli(32)
        enum = StatementEnumeration(moduli)
        stmts = split(0xDEADBEEF, moduli, piece_count=len(moduli))
        bits = embed_pieces_into_bits(stmts, enum, CIPHER)
        candidates, inspected = extract_candidates(bits, CIPHER, enum)
        assert inspected == len(bits) - 63
        for s in stmts:
            assert candidates[s] >= 1

    def test_pure_junk_mostly_rejected(self):
        moduli = choose_moduli(32)
        enum = StatementEnumeration(moduli)
        rng = random.Random(3)
        bits = [rng.randint(0, 1) for _ in range(4000)]
        candidates, inspected = extract_candidates(bits, CIPHER, enum)
        # Statement space occupies < 1/256 of block space; with ~4k
        # windows we expect ~15 false accepts on average. Allow slack.
        assert sum(candidates.values()) < inspected * 0.05


class TestVoting:
    def test_clear_winner_filters_contradictions(self):
        moduli = [11, 13, 17]
        w = 100
        genuine = split(w, moduli, piece_count=6)
        from collections import Counter
        candidates = Counter()
        for s in genuine:
            candidates[s] += 3
        bogus = Statement(0, 1, (w + 1) % (11 * 13))
        candidates[bogus] += 1
        votes, winners = hold_votes(candidates, moduli)
        assert winners[0] == w % 11
        filtered = apply_vote_filter(candidates, winners, moduli)
        assert bogus not in filtered
        assert all(s in filtered for s in set(genuine))

    def test_no_clear_winner_keeps_everything(self):
        moduli = [11, 13, 17]
        from collections import Counter
        a = Statement(0, 1, 5)
        b = Statement(0, 1, 6)
        candidates = Counter({a: 2, b: 2})
        votes, winners = hold_votes(candidates, moduli)
        assert 0 not in winners  # 2 is not strictly > 2*2
        assert apply_vote_filter(candidates, winners, moduli) == candidates

    def test_twice_second_place_boundary(self):
        moduli = [11, 13, 17]
        from collections import Counter
        a = Statement(0, 1, 5)
        b = Statement(0, 1, 6)
        # 4 vs 2: not strictly greater than twice -> no winner.
        assert 0 not in hold_votes(Counter({a: 4, b: 2}), moduli)[1]
        # 5 vs 2: strictly greater -> winner.
        assert hold_votes(Counter({a: 5, b: 2}), moduli)[1][0] == 5 % 11


class TestRecoverEndToEnd:
    @pytest.mark.parametrize("bits_width", [16, 32, 64, 128])
    def test_clean_recovery(self, bits_width):
        moduli = choose_moduli(bits_width)
        enum = StatementEnumeration(moduli)
        w = (2**bits_width - 1) * 2 // 3  # deterministic, full-width value
        stmts = split(w, moduli, piece_count=len(moduli) + 2)
        bits = embed_pieces_into_bits(stmts, enum, CIPHER)
        result = recover(bits, CIPHER, enum)
        assert result.complete
        assert result.value == w

    def test_survives_corrupted_pieces(self):
        moduli = choose_moduli(32)
        enum = StatementEnumeration(moduli)
        w = 0x12345678
        stmts = split(w, moduli, piece_count=3 * len(moduli))
        bits = embed_pieces_into_bits(
            stmts, enum, CIPHER, corrupt=(0, 3, 7)
        )
        result = recover(bits, CIPHER, enum)
        assert result.complete and result.value == w

    def test_insufficient_coverage_is_incomplete(self):
        moduli = choose_moduli(32)
        enum = StatementEnumeration(moduli)
        stmts = [s for s in split(7, moduli, piece_count=len(moduli) + 1)
                 if 0 not in (s.i, s.j)]
        bits = embed_pieces_into_bits(stmts, enum, CIPHER, junk_bits=8)
        result = recover(bits, CIPHER, enum)
        assert not result.complete
        assert result.value is None
        if result.congruence is not None:
            assert 7 % result.congruence.modulus == result.congruence.value

    def test_empty_bits(self):
        moduli = choose_moduli(16)
        enum = StatementEnumeration(moduli)
        result = recover([], CIPHER, enum)
        assert not result.complete
        assert result.windows_inspected == 0

    def test_voting_off_still_recovers_clean(self):
        moduli = choose_moduli(32)
        enum = StatementEnumeration(moduli)
        stmts = split(99, moduli, piece_count=len(moduli))
        bits = embed_pieces_into_bits(stmts, enum, CIPHER)
        result = recover(bits, CIPHER, enum, use_voting=False)
        assert result.complete and result.value == 99

    def test_accepted_statements_are_consistent(self):
        moduli = choose_moduli(64)
        enum = StatementEnumeration(moduli)
        stmts = split(2**60 + 17, moduli, piece_count=2 * len(moduli))
        bits = embed_pieces_into_bits(stmts, enum, CIPHER, corrupt=(1,))
        result = recover(bits, CIPHER, enum)
        assert gcd_consistency_check(result.accepted, moduli)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**48 - 1), st.integers(0, 2**32))
    def test_random_watermarks_random_junk(self, w, seed):
        moduli = choose_moduli(48)
        enum = StatementEnumeration(moduli)
        stmts = split(w, moduli, piece_count=len(moduli) + 1)
        bits = embed_pieces_into_bits(
            stmts, enum, CIPHER, rng=random.Random(seed)
        )
        result = recover(bits, CIPHER, enum)
        assert result.complete and result.value == w
