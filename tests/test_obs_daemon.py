"""Daemon observability end-to-end (`/v1/obs/*`, SLO gate, journal).

A real `ServerThread` over real sockets, driven with `ServiceClient`:
healthy traffic must leave every objective met, a conformant
`/metrics` exposition, queryable events and renderable trace trees —
and an injected fault plan must flip the SLO gate to breached. This is
the same proof the CI obs job runs via `benchmarks/obs_gate.py`.
"""

import json

import pytest

from repro import faults, obs
from repro.bytecode_wm.keys import WatermarkKey
from repro.faults import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.obs.journal import read_events, read_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.promcheck import check_exposition
from repro.pipeline import prepare
from repro.serve import ArtifactStore, ServerConfig, ServerThread
from repro.serve.client import ServiceClient, ServiceError
from repro.vm import disassemble
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"obs-key", inputs=[25, 10])


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous = obs.set_registry(MetricsRegistry())
    obs.disable_tracing()
    faults.clear()
    yield
    obs.set_registry(previous)
    obs.disable_tracing()
    faults.clear()


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("obs-serve") / "store")
    store = ArtifactStore(root)
    store.put(prepare(gcd_module(), KEY, 16, 8), label="gcd")
    return root


@pytest.fixture(scope="module")
def digest(store_root):
    return ArtifactStore(store_root, create=False).records()[0].digest


def boot(store_root, tmp_path, **overrides):
    defaults = dict(
        store_root=store_root, port=0, executor="thread", workers=2,
        journal_dir=str(tmp_path / "obs"),
    )
    defaults.update(overrides)
    return ServerThread(ServerConfig(**defaults))


def client_for(server, **kw):
    kw.setdefault("retry", RetryPolicy(max_attempts=1))
    return ServiceClient(
        f"http://127.0.0.1:{server.service.port}", **kw
    )


class TestHealthyPath:
    def test_events_spans_slo_and_metrics(
        self, store_root, digest, tmp_path
    ):
        obs.enable_tracing()
        with boot(store_root, tmp_path) as server:
            client = client_for(server)
            out = client.embed(digest, "acme", 0x1234)
            assert out["verified"]
            rec = client.recognize(digest, out["module"])
            assert rec["complete"]

            # -- events ring, with filters ----------------------------
            events = client.obs_events(limit=100)
            assert events["emitted_total"] >= 4
            kinds = {e["kind"] for e in events["events"]}
            assert {"http.request", "embed", "recognize"} <= kinds
            only_embed = client.obs_events(kind="embed")
            assert all(e["kind"] == "embed"
                       for e in only_embed["events"])
            assert only_embed["count"] == 1
            by_route = client.obs_events(kind="http.request",
                                         route="/v1/embed")
            assert by_route["count"] == 1

            # -- span trees -------------------------------------------
            traces = client.obs_spans()["traces"]
            assert traces
            tree = traces[-1]["tree"]
            assert "http.request" in tree and "copy" in tree

            # -- SLO verdict, here and in /healthz --------------------
            slo = client.obs_slo()
            assert slo["met"] is True and slo["breached"] == []
            health = client.healthz()
            assert health["slo"]["met"] is True

            # -- metrics: conformant, with the scrape-time gauges -----
            text = client.metrics()
            assert check_exposition(text) == []
            assert "repro_http_inflight" in text
            assert "repro_http_queue_depth" in text
            assert "repro_obs_journal_bytes" in text

        journal_dir = str(tmp_path / "obs")
        journaled = read_events(journal_dir)
        assert any(e.kind == "embed" for e in journaled)
        assert read_spans(journal_dir)  # span sink reached the file

    def test_obs_routes_are_loop_local(self, store_root, tmp_path):
        """Introspection must answer without touching the worker pool
        (it works with zero traffic and zero artifacts embedded)."""
        with boot(store_root, tmp_path) as server:
            client = client_for(server)
            assert client.obs_events()["count"] >= 0
            assert client.obs_spans()["traces"] == []
            assert client.obs_slo()["met"] is True

    def test_bad_limit_is_a_400(self, store_root, tmp_path):
        with boot(store_root, tmp_path) as server:
            client = client_for(server)
            status, doc = client.request(
                "GET", "/v1/obs/events?limit=banana"
            )
            assert status == 400
            assert "limit" in doc["error"]

    def test_journal_disabled_still_serves_rings(
        self, store_root, digest, tmp_path
    ):
        with boot(store_root, tmp_path, journal_dir=None) as server:
            client = client_for(server)
            client.embed(digest, "ringonly", 0x42)
            assert client.obs_events(kind="embed")["count"] == 1


class TestFaultedPath:
    def test_injected_faults_breach_the_slo_gate(
        self, store_root, digest, tmp_path
    ):
        """The CI gate's flip test: with `daemon.job` raising, embeds
        turn into 500s, the error-rate objective breaches, and the
        fault firings themselves are journaled."""
        faults.install(FaultPlan([
            FaultRule(site="daemon.job", action="raise", times=None),
        ]))
        with boot(store_root, tmp_path) as server:
            client = client_for(server)
            for index in range(3):
                with pytest.raises(ServiceError) as err:
                    client.embed(digest, f"doomed-{index}", 1 + index)
                assert err.value.status in (500, 503)
            slo = client.obs_slo()
            assert slo["met"] is False
            assert "embed-error-rate" in slo["breached"]
            assert slo["max_burn_rate"] > 1.0
            assert client.healthz()["slo"]["met"] is False
            fired = client.obs_events(kind="fault")
            assert fired["count"] >= 1
            assert fired["events"][0]["attrs"]["site"] == "daemon.job"

    def test_recovery_rate_breach(self, store_root, digest, tmp_path):
        """Recognitions that come back incomplete drag the recovery
        objective under its floor even though every request is a
        2xx/422 — the SLO sees outcomes, not just status codes."""
        with boot(store_root, tmp_path) as server:
            client = client_for(server)
            unmarked = disassemble(gcd_module())
            out = client.recognize(digest, unmarked)
            assert out["complete"] is False
            slo = client.obs_slo()
            assert "recognition-recovery" in slo["breached"]


class TestWorkerHubPlumbing:
    def test_process_pool_workers_share_the_journal(
        self, store_root, digest, tmp_path
    ):
        """With a process pool, worker-side fault firings append to
        the parent's journal file via the initializer's hub config."""
        faults.install(FaultPlan([
            FaultRule(site="daemon.job", action="raise", times=1),
        ]))
        config = dict(executor="process", workers=1,
                      request_timeout=120.0)
        with boot(store_root, tmp_path, **config) as server:
            client = client_for(server)
            with pytest.raises(ServiceError):
                client.embed(digest, "w-fault", 5)
        journaled = read_events(str(tmp_path / "obs"))
        fired = [e for e in journaled if e.kind == "fault"]
        assert fired and fired[0].attrs["site"] == "daemon.job"
