"""Tests for the compact binary trace format (trace_io version 2)."""

import io
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.bytecode_wm import WatermarkKey
from repro.pipeline import PrepareError, PreparedProgram, prepare
from repro.vm import (
    BinaryTraceWriter,
    BranchEvent,
    SiteKey,
    Trace,
    TraceFormatError,
    TracePoint,
    dump_trace,
    dump_trace_binary,
    load_trace,
    load_trace_binary,
    run_module,
)
from repro.workloads import collatz_module, gcd_module

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])


def _traced(module, inputs, mode="full"):
    return run_module(module, inputs, trace_mode=mode).trace


def _binary_bytes(trace, module):
    buf = io.BytesIO()
    dump_trace_binary(trace, module, buf)
    return buf.getvalue()


def _json_text(trace, module):
    buf = io.StringIO()
    dump_trace(trace, module, buf)
    return buf.getvalue()


class TestRoundTrip:
    def test_equivalent_to_json_round_trip(self):
        module = gcd_module()
        trace = _traced(module, [252, 105])
        via_binary = load_trace_binary(
            io.BytesIO(_binary_bytes(trace, module)), module
        )
        via_json = load_trace(io.StringIO(_json_text(trace, module)), module)
        assert via_binary.points == via_json.points == trace.points
        assert len(via_binary.branches) == len(trace.branches)
        for a, b, c in zip(
            via_binary.branches, via_json.branches, trace.branches
        ):
            assert a.branch is b.branch is c.branch
            assert a.follower is b.follower is c.follower
            assert a.taken == b.taken == c.taken

    def test_branch_only_trace(self):
        module = collatz_module()
        trace = _traced(module, [27], mode="branch")
        assert not trace.points
        loaded = load_trace_binary(
            io.BytesIO(_binary_bytes(trace, module)), module
        )
        assert _json_text(loaded, module) == _json_text(trace, module)

    def test_binary_is_much_smaller_than_json(self):
        module = gcd_module()
        trace = _traced(module, [2**63 - 1, 105])
        binary = _binary_bytes(trace, module)
        assert len(binary) < len(_json_text(trace, module).encode()) / 2

    def test_negative_and_large_values_survive(self):
        trace = Trace()
        extremes = (0, -1, 1, -(2**63), 2**63 - 1, 12345, -98765)
        trace.points.append(
            TracePoint(SiteKey("f", "<entry>"), extremes, (-7,))
        )
        module = gcd_module()
        loaded = load_trace_binary(
            io.BytesIO(_binary_bytes(trace, module)), module
        )
        assert loaded.points[0].locals_snapshot == extremes
        assert loaded.points[0].globals_snapshot == (-7,)

    def test_run_length_encoding_compresses_repeats(self):
        module = gcd_module()
        trace = _traced(module, [252, 105], mode="branch")
        event = trace.branches[0]
        repeated = Trace(branches=[event] * 10_000)
        short = Trace(branches=[event])
        grown = len(_binary_bytes(repeated, module)) - len(
            _binary_bytes(short, module)
        )
        assert grown < 8  # one BRANCH_RUN record, not 10k records
        loaded = load_trace_binary(
            io.BytesIO(_binary_bytes(repeated, module)), module
        )
        assert len(loaded.branches) == 10_000
        assert all(e.branch is event.branch for e in loaded.branches)


class TestStreamingWriter:
    def test_interleaved_writes_and_context_manager(self):
        module = gcd_module()
        trace = _traced(module, [252, 105])
        buf = io.BytesIO()
        with BinaryTraceWriter(buf, module) as writer:
            # Feed records in execution-ish interleaving, not grouped.
            points = iter(trace.points)
            for event in trace.branches:
                writer.write_branch(event)
                point = next(points, None)
                if point is not None:
                    writer.write_point(point)
            for point in points:
                writer.write_point(point)
        loaded = load_trace_binary(io.BytesIO(buf.getvalue()), module)
        assert loaded.points == trace.points
        assert len(loaded.branches) == len(trace.branches)

    def test_unclosed_stream_is_unreadable(self):
        module = gcd_module()
        trace = _traced(module, [252, 105])
        buf = io.BytesIO()
        writer = BinaryTraceWriter(buf, module)
        for point in trace.points:
            writer.write_point(point)
        # No close(): the END marker is missing by construction.
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace_binary(io.BytesIO(buf.getvalue()), module)

    def test_foreign_instruction_rejected_at_write_time(self):
        module = gcd_module()
        other = collatz_module()
        trace = _traced(other, [27], mode="branch")
        with pytest.raises(TraceFormatError, match="not present"):
            _binary_bytes(trace, module)


class TestCorruption:
    def _good_stream(self):
        module = gcd_module()
        trace = _traced(module, [252, 105])
        return _binary_bytes(trace, module), module

    def test_truncation_always_detected(self):
        data, module = self._good_stream()
        # Every proper prefix must fail loudly, never return short data.
        for cut in range(0, len(data), max(1, len(data) // 97)):
            with pytest.raises(TraceFormatError):
                load_trace_binary(io.BytesIO(data[:cut]), module)

    def test_bad_magic_rejected(self):
        data, module = self._good_stream()
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace_binary(io.BytesIO(b"NOPE" + data[4:]), module)

    def test_unsupported_version_rejected(self):
        data, module = self._good_stream()
        mangled = data[:4] + bytes([99]) + data[5:]
        with pytest.raises(TraceFormatError, match="version"):
            load_trace_binary(io.BytesIO(mangled), module)

    def test_unknown_record_tag_rejected(self):
        data, module = self._good_stream()
        mangled = data[:5] + b"\x6f" + data[5:]
        with pytest.raises(TraceFormatError, match="unknown record tag"):
            load_trace_binary(io.BytesIO(mangled), module)

    def test_dangling_ids_rejected(self):
        module = gcd_module()
        header = b"WVMT\x02"
        # BRANCH referencing edge id 0 with no DEF_EDGE record.
        with pytest.raises(TraceFormatError, match="undefined edge"):
            load_trace_binary(io.BytesIO(header + b"\x04\x00\x7f"), module)
        # POINT referencing string id 0 with no DEF_STR record.
        with pytest.raises(TraceFormatError, match="undefined string"):
            load_trace_binary(
                io.BytesIO(header + b"\x02\x00\x00\x00\x00\x7f"), module
            )

    def test_module_mismatch_rejected(self):
        module = gcd_module()
        trace = _traced(module, [252, 105])
        data = _binary_bytes(trace, module)
        with pytest.raises(TraceFormatError, match="missing instruction"):
            load_trace_binary(io.BytesIO(data), collatz_module())


class TestPropertyRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.text(min_size=1, max_size=8),
                st.text(min_size=1, max_size=8),
                st.lists(
                    st.integers(-(2**63), 2**63 - 1), max_size=4
                ),
                st.lists(
                    st.integers(-(2**63), 2**63 - 1), max_size=3
                ),
            ),
            max_size=20,
        ),
        branch_picks=st.lists(
            st.tuples(
                st.integers(0, 10**6), st.integers(0, 10**6), st.booleans()
            ),
            max_size=30,
        ),
    )
    def test_arbitrary_traces_round_trip(self, points, branch_picks):
        module = gcd_module()
        instrs = [
            i for fn in module.functions.values() for i in fn.code
        ]
        trace = Trace()
        for fn_name, site, locs, globs in points:
            trace.points.append(
                TracePoint(
                    SiteKey(fn_name, site), tuple(locs), tuple(globs)
                )
            )
        for b_pick, f_pick, taken in branch_picks:
            trace.branches.append(
                BranchEvent(
                    instrs[b_pick % len(instrs)],
                    instrs[f_pick % len(instrs)],
                    taken,
                )
            )
        loaded = load_trace_binary(
            io.BytesIO(_binary_bytes(trace, module)), module
        )
        assert loaded.points == trace.points
        assert [(id(e.branch), id(e.follower), e.taken) for e in loaded.branches] == [
            (id(e.branch), id(e.follower), e.taken) for e in trace.branches
        ]


class TestPreparedProgramBackcompat:
    def test_pickle_stores_binary_blob(self):
        prep = prepare(gcd_module(), KEY, 16)
        state = prep.__getstate__()
        assert isinstance(state["trace"], bytes)
        assert state["trace"].startswith(b"WVMT")

    def test_pickle_round_trip_rebinds_trace(self):
        prep = prepare(gcd_module(), KEY, 16)
        clone = pickle.loads(pickle.dumps(prep))
        assert clone.trace.points == prep.trace.points
        assert len(clone.trace.branches) == len(prep.trace.branches)
        own = {
            id(i)
            for fn in clone.module.functions.values()
            for i in fn.code
        }
        for event in clone.trace.branches:
            assert id(event.branch) in own
            assert id(event.follower) in own

    def test_old_format_object_graph_state_still_loads(self):
        # Artifacts pickled before the binary encoding carried the
        # Trace as a plain object graph; __setstate__ must accept it.
        prep = prepare(gcd_module(), KEY, 16)
        state = prep.__getstate__()
        state["trace"] = prep.trace
        old_style = PreparedProgram.__new__(PreparedProgram)
        old_style.__setstate__(state)
        assert old_style.trace is prep.trace
        assert old_style.matches(gcd_module(), KEY, 16)

    def test_corrupt_blob_raises_prepare_error(self):
        prep = prepare(gcd_module(), KEY, 16)
        state = prep.__getstate__()
        state["trace"] = state["trace"][:-3]
        broken = PreparedProgram.__new__(PreparedProgram)
        with pytest.raises(PrepareError, match="corrupt trace"):
            broken.__setstate__(state)

    def test_unrecognisable_trace_field_raises_prepare_error(self):
        prep = prepare(gcd_module(), KEY, 16)
        state = prep.__getstate__()
        state["trace"] = 12345
        broken = PreparedProgram.__new__(PreparedProgram)
        with pytest.raises(PrepareError, match="unrecognisable"):
            broken.__setstate__(state)
