"""Prometheus text-exposition conformance (`repro.obs.promcheck`).

Two directions: the real registry's exposition must pass the checker
under awkward label values and every instrument kind (the audit the
Gauge-subclasses-Counter design makes necessary), and the checker must
actually reject each class of malformation it claims to detect — a
checker that accepts everything proves nothing.
"""

import pytest

from repro.obs.metrics import (
    Gauge,
    MetricsRegistry,
)
from repro.obs.promcheck import assert_conformant, check_exposition


def build_registry():
    registry = MetricsRegistry()
    registry.counter("demo_requests_total", "Requests").inc(
        route="/v1/embed", method="POST", status="200"
    )
    registry.gauge("demo_inflight", "In flight").set(3)
    registry.histogram(
        "demo_seconds", "Latency", buckets=(0.1, 1.0, 10.0)
    ).observe(0.5, route="/v1/embed")
    return registry


class TestRealExposition:
    def test_registry_is_conformant(self):
        assert check_exposition(build_registry().to_prometheus()) == []

    def test_gauge_exposes_gauge_type_not_counter(self):
        """The classic subclassing bug this audit exists to catch:
        ``Gauge(Counter)`` must still declare ``# TYPE ... gauge``."""
        registry = MetricsRegistry()
        gauge = registry.gauge("demo_pool_size", "Pool")
        assert isinstance(gauge, Gauge)
        gauge.set(-2)  # and negative values must be legal for it
        text = registry.to_prometheus()
        assert "# TYPE demo_pool_size gauge" in text
        assert check_exposition(text) == []

    def test_awkward_label_values_escape_cleanly(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "Weird").inc(
            path='C:\\temp\\"x"\nnext'
        )
        text = registry.to_prometheus()
        assert check_exposition(text) == []
        assert "\\n" in text  # the newline never splits a sample line

    def test_histogram_series_complete(self):
        registry = MetricsRegistry()
        hist = registry.histogram("demo_seconds", "L", buckets=(1.0, 5.0))
        for value in (0.5, 3.0, 99.0):
            hist.observe(value, route="/r")
        text = registry.to_prometheus()
        assert check_exposition(text) == []
        assert 'demo_seconds_bucket{route="/r",le="+Inf"} 3' in text
        assert 'demo_seconds_count{route="/r"} 3' in text
        assert 'demo_seconds_sum{route="/r"}' in text

    def test_empty_registry_is_conformant(self):
        assert check_exposition(MetricsRegistry().to_prometheus()) == []

    def test_assert_conformant_raises_with_detail(self):
        with pytest.raises(AssertionError, match="no preceding # TYPE"):
            assert_conformant("orphan_sample 1\n")


class TestCheckerRejects:
    def find(self, text, needle):
        problems = check_exposition(text)
        assert any(needle in p for p in problems), (
            f"expected a problem containing {needle!r}, got {problems}"
        )

    def test_sample_without_type(self):
        self.find("lonely_total 1\n", "no preceding # TYPE")

    def test_type_after_samples(self):
        text = ("b 2\n" "# TYPE b counter\n" "b 3\n")
        self.find(text, "after its samples")

    def test_duplicate_type(self):
        text = ("# TYPE a counter\n" "# TYPE a counter\n" "a 1\n")
        self.find(text, "duplicate # TYPE")

    def test_unknown_type(self):
        self.find("# TYPE a sparkline\na 1\n", "unknown type")

    def test_malformed_help(self):
        self.find("# HELP broken\n", "malformed HELP")

    def test_bad_escape_in_label_value(self):
        text = '# TYPE a counter\na{k="bad\\q"} 1\n'
        self.find(text, "bad escape")

    def test_duplicate_label(self):
        text = '# TYPE a counter\na{k="1",k="2"} 1\n'
        self.find(text, "duplicate label")

    def test_non_numeric_value(self):
        self.find("# TYPE a counter\na banana\n", "non-numeric")

    def test_negative_counter(self):
        self.find("# TYPE a counter\na -1\n", "negative")

    def test_reserved_le_on_counter(self):
        text = '# TYPE a counter\na{le="1"} 1\n'
        self.find(text, "reserved 'le'")

    def test_histogram_bare_sample(self):
        text = "# TYPE h histogram\nh 1\n"
        self.find(text, "bare sample")

    def test_histogram_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4\n"
            "h_count 5\n"
        )
        self.find(text, "not cumulative")

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_sum 4\n"
            "h_count 5\n"
        )
        self.find(text, '+Inf')

    def test_histogram_inf_disagrees_with_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 4\n"
            "h_count 5\n"
        )
        self.find(text, "disagrees")

    def test_histogram_missing_sum_and_count(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="+Inf"} 1\n'
        self.find(text, "missing h_count")
        self.find(text, "missing h_sum")

    def test_histogram_count_without_buckets(self):
        text = "# TYPE h histogram\nh_count 1\nh_sum 1\n"
        self.find(text, "without any _bucket")

    def test_bucket_without_le(self):
        text = "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"
        self.find(text, "without an 'le'")

    def test_unparsable_line(self):
        self.find("# TYPE a counter\n{}} 1\n", "unparsable")

    def test_free_comments_and_blanks_ok(self):
        text = "\n# a free comment\n# TYPE a counter\n\na 1\n"
        assert check_exposition(text) == []
