"""End-to-end native watermarking over the SPEC-like kernels.

The Figure 9 benches sweep all ten programs at the paper's watermark
sizes; these tests pin the correctness corners on a fast subset so
the unit suite catches regressions without benchmark-scale runtimes.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.native import run_image
from repro.native_wm import embed_native, extract_native, extract_native_auto
from repro.workloads.spec import REF_INPUT, TRAIN_INPUT, spec_native

KERNELS = ("mcf", "gcc", "vortex")
WATERMARK = 0xD15EA5E
WIDTH = 32


@pytest.fixture(scope="module", params=KERNELS)
def embedded(request):
    image = spec_native(request.param)
    emb = embed_native(image, WATERMARK, WIDTH, TRAIN_INPUT)
    return request.param, image, emb


class TestSpecEmbedding:
    def test_train_input_semantics(self, embedded):
        name, image, emb = embedded
        assert run_image(emb.image, TRAIN_INPUT).output == \
            run_image(image, TRAIN_INPUT).output

    def test_ref_input_semantics(self, embedded):
        """The profile came from the train input; the binary must still
        be correct on the ref input (the paper's train/ref split)."""
        name, image, emb = embedded
        assert run_image(emb.image, REF_INPUT).output == \
            run_image(image, REF_INPUT).output

    def test_extraction_on_train_input(self, embedded):
        name, _image, emb = embedded
        res = extract_native(emb.image, WIDTH, emb.begin, emb.end,
                             TRAIN_INPUT)
        assert res.watermark == WATERMARK, name

    def test_auto_framed_extraction(self, embedded):
        name, _image, emb = embedded
        res = extract_native_auto(emb.image, TRAIN_INPUT, width=WIDTH)
        assert res.watermark == WATERMARK, name

    def test_tamper_cells_present(self, embedded):
        name, _image, emb = embedded
        assert emb.tamper_jumps, name

    def test_size_increase_modest(self, embedded):
        name, image, emb = embedded
        increase = (emb.image.file_size() - image.file_size()) \
            / image.file_size()
        assert 0.0 < increase < 0.15, (name, increase)

    def test_chain_has_both_directions(self, embedded):
        """A realistic mark needs forward AND backward call-site hops;
        this pins the zigzag construction on real binaries."""
        name, _image, emb = embedded
        diffs = [b - a for a, b in
                 zip(emb.call_addresses, emb.call_addresses[1:])]
        assert any(d > 0 for d in diffs), name
        assert any(d < 0 for d in diffs), name


def test_distinct_marks_distinct_binaries():
    image = spec_native("mcf")
    a = embed_native(image, 0x1111, 16, TRAIN_INPUT)
    b = embed_native(image, 0x2222, 16, TRAIN_INPUT)
    assert a.image.text != b.image.text
    assert extract_native_auto(a.image, TRAIN_INPUT,
                               width=16).watermark == 0x1111
    assert extract_native_auto(b.image, TRAIN_INPUT,
                               width=16).watermark == 0x2222


def test_deterministic_embedding():
    image = spec_native("gcc")
    a = embed_native(image, 0xABC, 12, TRAIN_INPUT)
    b = embed_native(image, 0xABC, 12, TRAIN_INPUT)
    assert a.image.text == b.image.text
    assert bytes(a.image.data) == bytes(b.image.data)
