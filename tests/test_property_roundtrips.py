"""Cross-component property tests: encode/decode, lift/lower, and
attack-pipeline invariance, driven by hypothesis."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.bytecode import (
    insert_noops,
    invert_branch_senses,
    renumber_locals,
    reorder_blocks,
    split_blocks,
)
from repro.bytecode_wm import WatermarkKey, embed, recognize
from repro.native import (
    Imm,
    Mem,
    Reg,
    REGISTERS,
    TEXT_BASE,
    decode_instruction,
    encode_instruction,
    lift,
    lower,
    ni,
    run_image,
)
from repro.native.isa import INSTRUCTION_FORMS
from repro.vm import run_module, verify_module
from repro.workloads import collatz_module
from repro.workloads.spec import SPEC_PROGRAMS, TRAIN_INPUT, spec_native

# ---------------------------------------------------------------------------
# Native instruction roundtrip over the whole ISA
# ---------------------------------------------------------------------------

_REGS = st.sampled_from(REGISTERS)
_IMM32 = st.integers(0, 2**32 - 1)
_ADDR = st.integers(0x08048000, 0x08148000)
_DISP = st.integers(-(2**15), 2**15)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(sorted(INSTRUCTION_FORMS)))
    sig, _length = INSTRUCTION_FORMS[mnemonic]
    ops = []
    for kind in sig:
        if kind == "r":
            ops.append(Reg(draw(_REGS)))
        elif kind == "i":
            ops.append(Imm(draw(_IMM32)))
        elif kind == "s8":
            ops.append(Imm(draw(st.integers(0, 31))))
        elif kind == "rel":
            ops.append(Imm(draw(_ADDR)))
        elif kind == "m":
            ops.append(Mem(base=draw(_REGS), disp=draw(_DISP)))
        elif kind == "a":
            ops.append(Mem(disp=draw(_ADDR)))
        elif kind == "x":
            ops.append(Mem(disp=draw(_ADDR), index=draw(_REGS)))
        else:  # pragma: no cover
            raise AssertionError(kind)
    return ni(mnemonic, *ops)


@settings(max_examples=300, deadline=None)
@given(instructions(), _ADDR)
def test_every_instruction_roundtrips(instr, addr):
    encoded = encode_instruction(instr, addr)
    assert len(encoded) == instr.length
    decoded, length = decode_instruction(encoded, 0, addr)
    assert length == instr.length
    assert decoded.mnemonic == instr.mnemonic
    assert decoded.operands == instr.operands


@settings(max_examples=30, deadline=None)
@given(st.lists(instructions(), min_size=1, max_size=30))
def test_instruction_streams_decode_linearly(instrs):
    """A concatenated stream decodes back to itself (the property the
    linear-sweep disassembler relies on)."""
    addr = TEXT_BASE
    blob = bytearray()
    placed = []
    for instr in instrs:
        placed.append((addr, instr))
        blob += encode_instruction(instr, addr)
        addr += instr.length
    offset = 0
    for addr, instr in placed:
        decoded, length = decode_instruction(bytes(blob), offset, addr)
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.operands == instr.operands
        offset += length
    assert offset == len(blob)


# ---------------------------------------------------------------------------
# lift/lower fixed point on every SPEC kernel
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_lift_lower_identity_all_spec_kernels():
    for name in SPEC_PROGRAMS:
        image = spec_native(name)
        relaid = lower(lift(image))
        assert relaid.text == image.text, name
        assert relaid.entry == image.entry, name


def test_lift_lower_twice_is_stable():
    image = spec_native("gzip")
    once = lower(lift(image))
    twice = lower(lift(once))
    assert once.text == twice.text


def test_relayout_preserves_behaviour_under_padding():
    image = spec_native("mcf")
    want = run_image(image, TRAIN_INPUT).output
    prog = lift(image)
    rng = random.Random(5)
    for _ in range(12):
        prog.insert(rng.randrange(len(prog.items)), [ni("nop")])
    assert run_image(lower(prog), TRAIN_INPUT).output == want


# ---------------------------------------------------------------------------
# Attack-pipeline invariance of the bytecode watermark
# ---------------------------------------------------------------------------

_LAYOUT_ATTACKS = [
    lambda m, r: insert_noops(m, r.randrange(1, 200), r),
    lambda m, r: invert_branch_senses(m, r.random(), r),
    lambda m, r: reorder_blocks(m, r),
    lambda m, r: split_blocks(m, r.randrange(1, 30), r),
    lambda m, r: renumber_locals(m, r),
]

_KEY = WatermarkKey(secret=b"pipeline", inputs=[27])
_EMBEDDED = None


def _embedded():
    global _EMBEDDED
    if _EMBEDDED is None:
        _EMBEDDED = embed(collatz_module(), 0x5E5E, _KEY,
                          watermark_bits=16, pieces=8)
    return _EMBEDDED


@pytest.mark.slow
@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(0, len(_LAYOUT_ATTACKS) - 1),
             min_size=1, max_size=4),
    st.integers(0, 2**32),
)
def test_random_layout_pipelines_never_dislodge_the_mark(picks, seed):
    """ANY composition of layout attacks preserves both program
    semantics and recognition — the paper's core resilience claim,
    hammered with random pipelines."""
    marked = _embedded()
    rng = random.Random(seed)
    module = marked.module
    for pick in picks:
        module = _LAYOUT_ATTACKS[pick](module, rng)
    verify_module(module)
    assert run_module(module, [27]).output == \
        run_module(marked.module, [27]).output
    found = recognize(module, _KEY, watermark_bits=16)
    assert found.complete and found.value == 0x5E5E


# ---------------------------------------------------------------------------
# CampaignReport serialization: roundtrip + additive merge
# ---------------------------------------------------------------------------

from repro.campaign import CampaignCell, CampaignReport, WorkloadRecord

_NAMES = st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12)
_SMALL_FLOAT = st.floats(min_value=0.0, max_value=8.0,
                         allow_nan=False, allow_infinity=False)


@st.composite
def campaign_cells(draw):
    copies = draw(st.integers(0, 6))
    return CampaignCell(
        workload=draw(_NAMES),
        workload_seed=draw(st.integers(0, 2**31)),
        bits=draw(st.sampled_from([8, 16, 24, 32])),
        attack=draw(_NAMES),
        intensity=draw(_SMALL_FLOAT),
        intensity_index=draw(st.integers(0, 4)),
        cell_seed=draw(st.integers(0, 2**32)),
        copies=copies,
        recovered=draw(st.integers(0, copies)),
        program_ok=draw(st.integers(0, copies)),
        errored=draw(st.integers(0, copies)),
        branch_delta=draw(_SMALL_FLOAT),
        size_delta_bytes=draw(_SMALL_FLOAT),
        copy_watermarks=draw(st.lists(st.integers(0, 2**16), max_size=6)),
        copy_seeds=draw(st.lists(st.integers(0, 2**16), max_size=6)),
        errors=draw(st.lists(_NAMES, max_size=3)),
        wall_seconds=draw(_SMALL_FLOAT),
    )


@st.composite
def campaign_reports(draw):
    cells = draw(st.lists(campaign_cells(), max_size=8))
    workloads = [
        WorkloadRecord(name=draw(_NAMES), seed=draw(st.integers(0, 2**31)),
                       inputs=draw(st.lists(st.integers(1, 1023),
                                            max_size=3)),
                       oracle_ok=draw(st.booleans()),
                       oracle_steps=draw(st.integers(0, 10**6)))
        for _ in range(draw(st.integers(0, 3)))
    ]
    return CampaignReport(
        seed=draw(st.integers(0, 2**31)),
        attacks=draw(st.lists(_NAMES, max_size=4)),
        bits=draw(st.lists(st.sampled_from([8, 16, 32]), max_size=2)),
        copies_per_cell=draw(st.integers(0, 8)),
        workloads=workloads,
        cells=cells,
        resumed_cells=draw(st.integers(0, 8)),
        wall_seconds=draw(_SMALL_FLOAT),
    )


@settings(max_examples=120, deadline=None)
@given(campaign_reports())
def test_campaign_report_dict_roundtrip(report):
    doc = report.to_dict()
    assert CampaignReport.from_dict(doc).to_dict() == doc


@settings(max_examples=120, deadline=None)
@given(campaign_reports())
def test_campaign_report_json_roundtrip(report):
    text = report.to_json()
    again = CampaignReport.from_json(text)
    assert again.to_dict() == report.to_dict()
    assert again.outcomes_json() == report.outcomes_json()


@settings(max_examples=80, deadline=None)
@given(st.lists(campaign_cells(), min_size=3, max_size=12,
                unique_by=lambda c: c.key()),
       st.integers(0, 2**31))
def test_campaign_merge_is_associative_on_disjoint_shards(cells, seed):
    """Sharding a matrix and folding the shards back, in any grouping,
    rebuilds the same report — the contract sharded campaigns rely on."""
    third = max(1, len(cells) // 3)
    shards = [cells[:third], cells[third:2 * third], cells[2 * third:]]

    def rep(shard):
        return CampaignReport(seed=seed,
                              cells=[CampaignCell.from_dict(c.to_dict())
                                     for c in shard])

    a, b, c = (rep(s) for s in shards)
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.to_dict() == right.to_dict()
    assert left.outcomes_json() == right.outcomes_json()
    whole = rep(cells)
    assert left.outcomes_json() == whole.outcomes_json()


@settings(max_examples=60, deadline=None)
@given(campaign_cells(), campaign_cells())
def test_campaign_merge_sums_counts_for_the_same_cell(x, y):
    """Two shards that each attacked part of one cell's fleet combine
    by summing counts and pooling the replay seeds."""
    y = CampaignCell.from_dict({**y.to_dict(), **{
        k: getattr(x, k) for k in ("workload", "bits", "attack",
                                   "intensity_index", "substrate")
    }})
    merged = CampaignReport(seed=1, cells=[x]).merge(
        CampaignReport(seed=1, cells=[y]))
    assert len(merged.cells) == 1
    cell = merged.cells[0]
    assert cell.copies == x.copies + y.copies
    assert cell.recovered == x.recovered + y.recovered
    assert cell.program_ok == x.program_ok + y.program_ok
    assert cell.copy_watermarks == x.copy_watermarks + y.copy_watermarks
