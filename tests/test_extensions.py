"""Tests for the paper's stated extensions / future-work features:

* automatic begin/end framing during native extraction (§4.2.3:
  "we expect to augment the implementation ... to use a framing
  scheme that would allow these addresses to be identified
  automatically");
* obfuscating non-watermark transfers through the branch function
  (§4.2.1: the branch function "can also be used to obfuscate other
  control transfers ... that have nothing to do with the watermark");
* pre-watermark diversification against collusive attacks (§5.1.2:
  "collusive attacks can be prevented by obfuscating the program
  before it is watermarked").
"""

import pytest

from repro.attacks.native import reroute_branch_function
from repro.bytecode_wm import (
    WatermarkKey,
    diversify,
    embed,
    instruction_diff_fraction,
    recognize,
)
from repro.lang.codegen_native import compile_source_native
from repro.native import run_image
from repro.native_wm import embed_native, extract_native, extract_native_auto
from repro.native_wm.extractor import _linked_runs, BranchFunctionEvent
from repro.vm import run_module, verify_module
from repro.workloads import collatz_module, jess_module

HOST_SRC = """
fn hot(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) { acc = acc + i * i; }
    return acc;
}
fn late_a(x) { var y = 0; if (x % 2 == 0) { y = x + 1; }
               else { y = x - 1; } return y; }
fn late_b(x) { var y = 0; if (x > 10) { y = x * 3; }
               else { y = x * 5; } return y; }
fn main() {
    var n = input();
    print(hot(n));
    if (n > 2) { print(n * 2); } else { print(n); }
    print(late_a(n));
    print(late_b(n));
    return 0;
}
"""
KEY_INPUT = [50]


@pytest.fixture(scope="module")
def host():
    return compile_source_native(HOST_SRC)


class TestAutoFraming:
    def test_extracts_without_bracket(self, host):
        emb = embed_native(host, 0x1234, 16, KEY_INPUT)
        res = extract_native_auto(emb.image, KEY_INPUT)
        assert res.watermark == 0x1234
        assert res.width == 16

    def test_width_hint_selects_correct_run(self, host):
        emb = embed_native(host, 0xFF00, 16, KEY_INPUT)
        res = extract_native_auto(emb.image, KEY_INPUT, width=16)
        assert res.watermark == 0xFF00

    def test_unwatermarked_binary(self, host):
        res = extract_native_auto(host, KEY_INPUT)
        assert res.watermark is None

    def test_survives_reroute_with_smart_tracer(self, host):
        emb = embed_native(host, 0xACE1, 16, KEY_INPUT)
        attacked = reroute_branch_function(
            emb.image, emb.bf_entry, KEY_INPUT
        )
        res = extract_native_auto(attacked, KEY_INPUT, width=16,
                                  bf_entry=emb.bf_entry, tracer="smart")
        assert res.watermark == 0xACE1

    def test_linked_runs_splitting(self):
        ev = BranchFunctionEvent
        events = [
            ev(100, 200), ev(200, 150), ev(150, 999),   # chain of 3
            ev(500, 600),                                # singleton
            ev(700, 800), ev(800, 750),                  # chain of 2
        ]
        runs = _linked_runs(events)
        assert [len(r) for r in runs] == [3, 1, 2]

    def test_agrees_with_manual_extraction(self, host):
        for wm in (0, 0xFFFF, 0x8001):
            emb = embed_native(host, wm, 16, KEY_INPUT)
            manual = extract_native(emb.image, 16, emb.begin, emb.end,
                                    KEY_INPUT)
            auto = extract_native_auto(emb.image, KEY_INPUT)
            assert manual.watermark == auto.watermark == wm


class TestObfuscatedExtraTransfers:
    def test_semantics_preserved(self, host):
        base = run_image(host, KEY_INPUT).output
        emb = embed_native(host, 0xBEEF, 16, KEY_INPUT, obfuscate_extra=3)
        assert len(emb.obfuscated_calls) == 3
        assert run_image(emb.image, KEY_INPUT).output == base
        for probe in ([4], [13]):
            assert run_image(emb.image, probe).output == \
                run_image(host, probe).output

    def test_extraction_unaffected(self, host):
        emb = embed_native(host, 0xBEEF, 16, KEY_INPUT, obfuscate_extra=3)
        assert extract_native(emb.image, 16, emb.begin, emb.end,
                              KEY_INPUT).watermark == 0xBEEF
        assert extract_native_auto(emb.image, KEY_INPUT,
                                   width=16).watermark == 0xBEEF

    def test_extras_are_real_callers(self, host):
        """The extra call sites call the same branch function, so the
        watermark chain's callers no longer stand out as the only ones."""
        emb = embed_native(host, 0xBEEF, 16, KEY_INPUT, obfuscate_extra=3)
        for addr in emb.obfuscated_calls:
            instr, _len = emb.image.decode_at(addr)
            assert instr.mnemonic == "call"
            assert instr.operands[0].value == emb.bf_entry

    def test_zero_extras_by_default(self, host):
        emb = embed_native(host, 0xBEEF, 16, KEY_INPUT)
        assert emb.obfuscated_calls == []


class TestDiversification:
    def test_semantics_preserved(self):
        module = collatz_module()
        for seed in (1, 2, 3):
            spun = diversify(module, seed)
            verify_module(spun)
            for inputs in ([27], [7], [100]):
                assert run_module(spun, inputs).output == \
                    run_module(module, inputs).output

    def test_different_seeds_differ(self):
        module = collatz_module()
        a = diversify(module, 1)
        b = diversify(module, 2)
        assert instruction_diff_fraction(a, b) > 0.3

    def test_same_seed_is_deterministic(self):
        module = collatz_module()
        a = diversify(module, 7)
        b = diversify(module, 7)
        assert instruction_diff_fraction(a, b) == 0.0

    def test_collusion_defense(self):
        """Without diversification, diffing two fingerprinted copies
        isolates the watermark code; with it, the copies differ almost
        everywhere."""
        app = jess_module(rule_count=24, burn=500)
        key = WatermarkKey(secret=b"vendor", inputs=[7, 13])

        plain_a = embed(app, 1001, key, pieces=8, watermark_bits=16).module
        plain_b = embed(app, 2002, key, pieces=8, watermark_bits=16).module
        naive_diff = instruction_diff_fraction(plain_a, plain_b)

        div_a = embed(diversify(app, 11), 1001, key, pieces=8,
                      watermark_bits=16).module
        div_b = embed(diversify(app, 22), 2002, key, pieces=8,
                      watermark_bits=16).module
        defended_diff = instruction_diff_fraction(div_a, div_b)

        # The defense at least doubles how much of the program differs.
        assert defended_diff > 2 * naive_diff or defended_diff > 0.5

        # And the fingerprints still recognize.
        assert recognize(div_a, key, watermark_bits=16).value == 1001
        assert recognize(div_b, key, watermark_bits=16).value == 2002

    def test_diff_fraction_metric(self):
        module = collatz_module()
        assert instruction_diff_fraction(module, module) == 0.0
        assert instruction_diff_fraction(module, module.copy()) == 0.0
