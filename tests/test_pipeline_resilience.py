"""Fault-injection tests for the batch pipeline's recovery paths.

Every scenario here is deterministic: faults fire on exact hit counts
from seeded plans, and one-shot cross-process faults (worker kills)
are anchored to filesystem markers so a rebuilt pool cannot re-fire
them.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import faults
from repro.bytecode_wm import WatermarkKey, recognize
from repro.cli import main
from repro.faults.injector import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.pipeline import CopySpec, prepare, run_batch
from repro.pipeline.batch import read_checkpoint
from repro.vm import assemble
from repro.workloads import gcd_module

KEY = WatermarkKey(secret=b"pldi-2004", inputs=[25, 10])
BITS = 16


@pytest.fixture(scope="module")
def prepared():
    return prepare(gcd_module(), KEY, BITS)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def no_ambient_plan():
    yield
    faults.clear()


def specs(n, start=1):
    return [CopySpec(f"c{i:03d}", watermark=start + i, seed=i)
            for i in range(n)]


FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


class TestWorkerLossRecovery:
    def test_killed_worker_mid_batch_retries_and_completes(
        self, prepared, tmp_path
    ):
        """The tentpole scenario: one worker dies (os._exit, as an
        OOM-kill would) under its 2nd task; the batch still completes
        with every copy verified."""
        plan = FaultPlan(rules=[
            FaultRule(site="batch.worker.task", action="kill", after=2,
                      once_token="kill-one", state_dir=str(tmp_path)),
        ])
        with faults.injected(plan):
            report = run_batch(
                prepared, specs(8), workers=2, retry=FAST_RETRY
            )
        assert report.all_ok
        assert report.retry_rounds >= 1
        assert any(c.attempts > 1 for c in report.copies)
        assert get_registry().counter(
            "repro_batch_retries_total"
        ).value() > 0

    def test_every_spec_yields_exactly_one_result(self, prepared, tmp_path):
        """A dead chunk must never strand its specs: success, failure,
        or resumed — one result per submitted CopySpec, in order."""
        plan = FaultPlan(rules=[
            FaultRule(site="batch.worker.task", action="kill", after=3,
                      once_token="kill-mid", state_dir=str(tmp_path)),
        ])
        wanted = specs(10)
        with faults.injected(plan):
            report = run_batch(
                prepared, wanted, workers=3, chunksize=2, retry=FAST_RETRY
            )
        assert [c.copy_id for c in report.copies] == [
            s.copy_id for s in wanted
        ]

    def test_retry_exhaustion_reports_transient_failures(self, prepared):
        """A fault that kills every round exhausts the policy; the
        stranded specs come back as transient failures, not silence."""
        plan = FaultPlan(rules=[
            FaultRule(site="batch.worker.task", action="raise", times=None),
        ])
        with faults.injected(plan):
            report = run_batch(
                prepared, specs(4), workers=2,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            )
        assert len(report.copies) == 4
        assert all(c.error_kind == "transient" for c in report.copies)
        assert not report.all_ok
        assert report.retry_rounds == 1

    def test_permanent_failures_are_not_retried(self, prepared):
        """An exception inside embed_copy is deterministic: classified
        permanent, reported once, zero retry rounds."""
        bad = CopySpec("over", watermark=(1 << BITS) + 1, seed=0)
        report = run_batch(
            prepared, [bad] + specs(2), workers=1, retry=FAST_RETRY
        )
        failed = report.copies[0]
        assert not failed.ok and failed.error_kind == "permanent"
        assert failed.attempts == 1
        assert report.retry_rounds == 0
        assert all(c.verified for c in report.copies[1:])

    def test_sequential_path_retries_injected_raises(self, prepared):
        plan = FaultPlan(rules=[
            FaultRule(site="batch.worker.task", action="raise", times=1),
        ])
        with faults.injected(plan):
            report = run_batch(
                prepared, specs(3), workers=1, retry=FAST_RETRY
            )
        assert report.all_ok and report.retry_rounds == 1


class TestCheckpointResume:
    def test_checkpoint_journals_every_result(self, prepared, tmp_path):
        ckpt = str(tmp_path / "journal.jsonl")
        report = run_batch(prepared, specs(4), checkpoint=ckpt)
        assert report.all_ok
        entries = read_checkpoint(ckpt)
        assert sorted(e.copy_id for e in entries) == [
            s.copy_id for s in specs(4)
        ]

    def test_resume_skips_verified_copies(self, prepared, tmp_path):
        ckpt = str(tmp_path / "journal.jsonl")
        outdir = str(tmp_path / "out")
        first = run_batch(
            prepared, specs(3), checkpoint=ckpt, outdir=outdir
        )
        assert first.all_ok
        full = run_batch(
            prepared, specs(6), checkpoint=ckpt, resume=True, outdir=outdir
        )
        assert full.all_ok
        assert full.resumed == 3
        resumed = {c.copy_id for c in full.copies if c.resumed}
        assert resumed == {s.copy_id for s in specs(3)}
        for s in specs(6):
            assert os.path.exists(os.path.join(outdir, f"{s.copy_id}.wasm"))

    def test_resume_tolerates_torn_final_line(self, prepared, tmp_path):
        ckpt = str(tmp_path / "journal.jsonl")
        run_batch(prepared, specs(3), checkpoint=ckpt)
        with open(ckpt, "a") as fp:
            fp.write('{"copy_id": "torn-wri')  # crash mid-append
        report = run_batch(
            prepared, specs(4), checkpoint=ckpt, resume=True
        )
        assert report.all_ok and report.resumed == 3

    def test_resume_requires_checkpoint(self, prepared):
        with pytest.raises(ValueError, match="checkpoint"):
            run_batch(prepared, specs(1), resume=True)

    def test_resume_after_hard_kill_completes_without_reembedding(
        self, prepared, tmp_path
    ):
        """End-to-end crash recovery: a batch process is hard-killed
        mid-run (an injected worker kill with retries disabled takes
        the whole run down), then a --resume run finishes the batch
        re-embedding only what the journal does not already have."""
        module_path = tmp_path / "program.wasm"
        from repro.vm import disassemble
        module_path.write_text(disassemble(gcd_module()))
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({
            "module": "program.wasm",
            "secret": "pldi-2004",
            "inputs": [25, 10],
            "bits": BITS,
            "copies": [
                {"id": f"c{i:03d}", "watermark": i + 1, "seed": i}
                for i in range(6)
            ],
        }))
        outdir = tmp_path / "out"
        ckpt = tmp_path / "journal.jsonl"
        driver = tmp_path / "crashy.py"
        driver.write_text(
            "import sys\n"
            "from repro import faults\n"
            "from repro.cli import main\n"
            "plan = faults.FaultPlan(rules=[\n"
            "    faults.FaultRule(site='batch.worker.task', action='kill',\n"
            f"                     after=3, once_token='crash',\n"
            f"                     state_dir={str(tmp_path)!r},\n"
            "                     times=None)])\n"
            "faults.install(plan)\n"
            "sys.exit(main([\n"
            f"    'batch-embed', {str(manifest)!r}, '-o', {str(outdir)!r},\n"
            f"    '--workers', '1', '--checkpoint', {str(ckpt)!r},\n"
            "]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, str(driver)], env=env,
            capture_output=True, text=True, timeout=120,
        )
        # workers=1 runs in-process, so the injected kill takes the
        # whole batch down — the hard mid-run crash we want.
        assert proc.returncode == 77, proc.stderr
        survived = read_checkpoint(str(ckpt))
        assert 0 < len(survived) < 6

        rc = main([
            "batch-embed", str(manifest), "-o", str(outdir),
            "--workers", "1", "--checkpoint", str(ckpt), "--resume",
        ])
        assert rc == 0
        report = json.loads((outdir / "report.json").read_text())
        assert report["all_ok"] and report["copy_count"] == 6
        assert report["resumed"] == len(survived)
        # The minted copies really carry their marks.
        for i in (0, 5):
            text = (outdir / f"c{i:03d}.wasm").read_text()
            found = recognize(assemble(text), KEY, watermark_bits=BITS)
            assert found.complete and found.value == i + 1

    def test_cli_resume_flag_requires_checkpoint(self, prepared, capsys):
        rc = main(["batch-embed", "nope.json", "-o", "out", "--resume"])
        assert rc == 2
        assert "--checkpoint" in capsys.readouterr().err
